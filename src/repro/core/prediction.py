"""Problem scaling: predict execution time for unseen problem sizes.

Section 6.1 of the paper: after the important variables are identified
and modeled in terms of the problem characteristic, "these models,
combined with the random forest, allow us to predict the execution
times for unseen matrix sizes on the same hardware" (Fig. 5b, Fig. 6b).

The flow implemented by :class:`ProblemScalingPredictor`:

1. fit BlackForest on a training campaign (counters + characteristic);
2. reduce to the top-k predictors, validating retention;
3. fit counter models (GLM/MARS) for the retained predictors;
4. for an unseen problem size, generate predicted counter values and
   feed them to the reduced forest to obtain the predicted time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import explained_variance, mse
from repro.profiling.campaign import CampaignResult

from .counter_models import CounterModelSet
from .model import BlackForest, BlackForestFit

__all__ = ["PredictionReport", "ProblemScalingPredictor"]


@dataclass
class PredictionReport:
    """Predicted vs. measured times for a set of problems (Fig. 5b/6b)."""

    problems: np.ndarray
    predicted_s: np.ndarray
    measured_s: np.ndarray

    @property
    def mse(self) -> float:
        return mse(self.measured_s, self.predicted_s)

    @property
    def explained_variance(self) -> float:
        return explained_variance(self.measured_s, self.predicted_s)

    @property
    def mean_relative_error(self) -> float:
        return float(
            np.mean(np.abs(self.predicted_s - self.measured_s) / self.measured_s)
        )

    def rows(self) -> list[tuple[float, float, float]]:
        return [
            (float(p), float(pr), float(me))
            for p, pr, me in zip(self.problems, self.predicted_s, self.measured_s)
        ]


class ProblemScalingPredictor:
    """Predicts times for unseen problem characteristics on one GPU."""

    def __init__(
        self,
        blackforest: BlackForest | None = None,
        characteristic: str | list[str] = "size",
        prefer_mars: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.blackforest = blackforest if blackforest is not None else BlackForest(rng=rng)
        self.characteristic = characteristic
        self.prefer_mars = prefer_mars
        self._rng = np.random.default_rng(rng)

    @property
    def characteristics(self) -> list[str]:
        if isinstance(self.characteristic, str):
            return [self.characteristic]
        return list(self.characteristic)

    def fit(self, campaign: CampaignResult) -> "ProblemScalingPredictor":
        self.fit_: BlackForestFit = self.blackforest.fit(
            campaign, include_characteristics=True
        )
        retained = list(self.fit_.reduced_feature_names)
        for char in self.characteristics:
            if char in self.fit_.feature_names and char not in retained:
                retained.append(char)
        self.retained_ = retained

        # Forest over the retained predictors only (the paper's reduced
        # model), refit on the full training partition.
        cols = [self.fit_.feature_names.index(n) for n in retained]
        self.forest_ = RandomForestRegressor(
            n_trees=self.blackforest.n_trees,
            min_samples_leaf=self.blackforest.min_samples_leaf,
            importance=False,
            rng=self._rng,
        ).fit(self.fit_.X_train[:, cols], self.fit_.y_train, feature_names=retained)

        # Counter models are fit on the training partition only, so the
        # held-out problems stay genuinely unseen.
        names = self.fit_.feature_names
        for char in self.characteristics:
            if char not in names:
                raise ValueError(
                    f"campaign has no problem characteristic {char!r}"
                )
        xs = np.column_stack(
            [self.fit_.X_train[:, names.index(c)] for c in self.characteristics]
        )
        series = {
            n: self.fit_.X_train[:, names.index(n)]
            for n in retained
            if n not in self.characteristics
        }
        self.counter_models_ = CounterModelSet(
            characteristic=self.characteristic, prefer_mars=self.prefer_mars
        ).fit_arrays(xs, series)
        return self

    def predict(self, problems: np.ndarray) -> np.ndarray:
        """Predicted execution times for unseen problem characteristics."""
        X = self.counter_models_.predictor_rows(problems, self.retained_)
        return self.forest_.predict(X)

    def report(self, campaign: CampaignResult) -> PredictionReport:
        """Predict an evaluation campaign's problems and compare."""
        chars = self.characteristics
        if len(chars) == 1:
            problems = np.array(
                [r.characteristics[chars[0]] for r in campaign.records]
            )
        else:
            problems = np.array(
                [[r.characteristics[c] for c in chars] for r in campaign.records]
            )
        return PredictionReport(
            problems=problems[:, 0] if problems.ndim > 1 else problems,
            predicted_s=self.predict(problems),
            measured_s=campaign.times(),
        )
