"""Bottleneck detection: from variable importance to performance patterns.

"Variable importance can be correlated to performance patterns,
enabling us to provide systematic bottleneck detection and analysis, as
well as suggest potential elimination strategies" (paper Section 1).
Each known pattern is described by the counters that witness it; a
pattern *fires* when its witnesses rank highly in the importance
analysis (and, where meaningful, their partial dependence shows the
tell-tale direction).
"""

from __future__ import annotations

from dataclasses import dataclass

from .importance import ImportanceRanking

__all__ = ["BottleneckPattern", "BottleneckFinding", "PATTERNS", "detect_bottlenecks"]


@dataclass(frozen=True)
class BottleneckPattern:
    """A recognizable performance-limiting pattern.

    ``generic`` marks volume *symptoms* (lots of memory requests, high
    bandwidth) as opposed to specific *pathologies* (bank conflicts,
    divergence, uncoalesced access): when both fire at similar ranks,
    the pathology is the actionable finding and is reported first.
    """

    key: str
    description: str
    witnesses: tuple[str, ...]      # counters implicating this pattern
    remedy: str
    generic: bool = False


PATTERNS: list[BottleneckPattern] = [
    BottleneckPattern(
        key="shared_bank_conflicts",
        description="shared memory bank conflicts serialize warp accesses "
        "(replays waste issue slots and bandwidth)",
        witnesses=(
            "shared_replay_overhead",
            "l1_shared_bank_conflict",
            "shared_load_replay",
            "shared_store_replay",
        ),
        remedy="pad shared-memory arrays or use sequential addressing so "
        "consecutive lanes hit distinct banks (cf. reduce1 -> reduce2)",
    ),
    BottleneckPattern(
        key="uncoalesced_access",
        description="global memory requests split into many transactions "
        "(address patterns violate coalescing rules)",
        witnesses=(
            "global_replay_overhead",
            "gld_efficiency",
            "gst_efficiency",
            "global_store_transaction",
        ),
        remedy="restructure data layout / indexing so a warp touches one "
        "contiguous aligned segment per request",
    ),
    BottleneckPattern(
        key="cache_misses",
        description="poor locality: L1/L2 misses force long-latency DRAM trips",
        witnesses=(
            "l1_global_load_miss",
            "l2_read_transactions",
            "l2_write_transactions",
        ),
        remedy="tile working sets into shared memory or reorder traversal "
        "for reuse before eviction",
    ),
    BottleneckPattern(
        key="low_occupancy",
        description="not enough resident warps to hide memory/pipeline latency",
        witnesses=("achieved_occupancy",),
        remedy="increase block size / reduce per-thread registers and "
        "shared memory so more warps fit per SM",
    ),
    BottleneckPattern(
        key="divergence",
        description="branch divergence idles lanes within warps",
        witnesses=("divergent_branch", "warp_execution_efficiency"),
        remedy="re-map work to threads so whole warps take the same path "
        "(cf. reduce0 -> reduce1 interleaved->strided indexing)",
    ),
    BottleneckPattern(
        key="bandwidth",
        description="DRAM bandwidth saturated: the kernel moves more bytes "
        "than the memory system can stream",
        witnesses=(
            "dram_read_throughput",
            "dram_write_throughput",
            "gld_throughput",
            "gst_throughput",
            "gld_requested_throughput",
            "gst_requested_throughput",
            "l2_read_throughput",
            "l2_write_throughput",
        ),
        remedy="reduce traffic (fuse kernels, increase arithmetic per byte, "
        "cache blocking); a bandwidth-bound kernel at peak throughput is "
        "already optimal (cf. reduce6)",
        generic=True,
    ),
    BottleneckPattern(
        key="instruction_replay",
        description="issued instructions greatly exceed executed ones "
        "(serialization of any origin)",
        witnesses=("inst_replay_overhead",),
        remedy="inspect shared/global replay overheads to attribute the "
        "serialization, then apply the matching remedy",
        generic=True,
    ),
    BottleneckPattern(
        key="memory_requests",
        description="execution time tracks raw memory request/transaction "
        "volume: the kernel is memory-operation-bound",
        witnesses=(
            "gld_request",
            "gst_request",
            "shared_load",
            "shared_store",
            "ldst_fu_utilization",
        ),
        remedy="process multiple elements per thread and widen loads "
        "(float4) to amortize per-request overhead (cf. reduce6)",
        generic=True,
    ),
    # ---- CPU patterns (the Section 7 "BF on CPUs" extension) ----
    BottleneckPattern(
        key="cpu_cache_misses",
        description="poor locality on the CPU: L1/LLC misses force DRAM trips",
        witnesses=("cache_misses", "l1_dcache_load_misses",
                   "cpu_llc_miss_rate", "cache_references"),
        remedy="block loops for the cache hierarchy and keep working sets "
        "within the LLC",
    ),
    BottleneckPattern(
        key="cpu_branch_misprediction",
        description="mispredicted branches flush the CPU pipeline",
        witnesses=("branch_misses",),
        remedy="make hot branches predictable (sort inputs, use branchless "
        "selects) or vectorize the loop body",
    ),
    BottleneckPattern(
        key="cpu_vectorization",
        description="execution time tracks SIMD instruction volume: the "
        "vector units are the busy resource",
        witnesses=("simd_instructions", "cpu_vectorization_ratio"),
        remedy="if the vector units saturate the kernel is compute-bound; "
        "reduce arithmetic or improve instruction-level parallelism",
    ),
    BottleneckPattern(
        key="cpu_bandwidth",
        description="the CPU's memory bus is saturated",
        witnesses=("cpu_mem_bandwidth",),
        remedy="improve reuse before eviction or split the working set "
        "across NUMA domains",
        generic=True,
    ),
    BottleneckPattern(
        key="cpu_scaling",
        description="parallel efficiency limits multicore scaling "
        "(serial fractions, load imbalance or fork/join overhead)",
        witnesses=("cpu_parallel_efficiency",),
        remedy="shrink serial regions and use coarser-grained parallel "
        "work distribution",
    ),
    BottleneckPattern(
        key="cpu_instruction_volume",
        description="execution time tracks retired instruction volume",
        witnesses=("instructions", "l1_dcache_loads", "branches", "cpu_ipc"),
        remedy="strength-reduce the inner loop and eliminate redundant "
        "address arithmetic",
        generic=True,
    ),
]


@dataclass
class BottleneckFinding:
    """One detected pattern with its evidence."""

    pattern: BottleneckPattern
    evidence: list[str]          # witnesses found among the top predictors
    best_rank: int               # best (lowest) rank of any witness
    score: float                 # importance score of that witness

    def describe(self) -> str:
        ev = ", ".join(self.evidence)
        return (
            f"[{self.pattern.key}] {self.pattern.description}\n"
            f"  evidence: {ev} (best rank #{self.best_rank + 1}, "
            f"importance {self.score:.2f})\n"
            f"  remedy: {self.pattern.remedy}"
        )


def detect_bottlenecks(
    ranking: ImportanceRanking,
    top_k: int = 8,
    min_patterns: int = 1,
) -> list[BottleneckFinding]:
    """Match the top-k important predictors against the pattern library.

    Findings are ordered by the rank of their strongest witness, so the
    first finding is the primary bottleneck.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    top = ranking.top(top_k)
    findings: list[BottleneckFinding] = []
    for pattern in PATTERNS:
        evidence = [w for w in pattern.witnesses if w in top]
        if not evidence:
            continue
        best = min(ranking.rank_of(w) for w in evidence)
        witness = ranking.names[best]
        findings.append(
            BottleneckFinding(
                pattern=pattern,
                evidence=evidence,
                best_rank=best,
                score=ranking.score_of(witness),
            )
        )
    # Specific pathologies outrank generic volume symptoms firing at a
    # comparable depth (a 2-rank handicap for generic patterns).
    findings.sort(key=lambda f: f.best_rank + (2 if f.pattern.generic else 0))
    if len(findings) < min_patterns and top_k < len(ranking.names):
        return detect_bottlenecks(ranking, top_k=top_k + 4, min_patterns=min_patterns)
    return findings
