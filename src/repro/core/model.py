"""The BlackForest model: the paper's five-stage pipeline (Section 4.2).

1. **data collection** — done by :mod:`repro.profiling` (the campaign
   passed to :meth:`BlackForest.fit`);
2. **random forest construction and validation** — 80:20 random split,
   forest fit on the training partition, validated via OOB error /
   explained variance and the held-out test set;
3. **variable importance analysis** — permutation importance ranking
   plus partial dependence directions for the leaders;
4. **refinement with PCA** (optional, recommended) — principal
   components with varimax-rotated factor loadings over the counter
   matrix, used to interpret correlated variable groups;
5. **results interpretation** — bottleneck detection against the
   performance-pattern library and the reduced-model retention check.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro._compat import warn_once
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import explained_variance, mse
from repro.ml.pca import PCA
from repro.ml.preprocessing import (
    drop_constant_columns,
    sanitize_matrix,
    train_test_split,
)
from repro.obs import span
from repro.obs.log import emit as emit_event
from repro.profiling.campaign import CampaignResult

from .bottleneck import BottleneckFinding, detect_bottlenecks
from .importance import ImportanceRanking, rank_importance, reduced_model_check

__all__ = ["BlackForest", "BlackForestFit", "induced_counter_ranking"]


def induced_counter_ranking(component_ranking, pca: PCA) -> ImportanceRanking:
    """Map a ranking over principal components back onto counters.

    Each counter's induced score is the importance of every component
    weighted by the counter's absolute factor loading on it — the
    "easy interpretation of random forest outcome" the paper's Section 7
    expects from the PCA-first pipeline.
    """
    loadings = pca.loadings
    scores = np.zeros(len(loadings.names))
    for comp_idx, comp in enumerate(loadings.components):
        if comp not in component_ranking.names:
            continue
        imp = max(component_ranking.score_of(comp), 0.0)
        scores += imp * np.abs(loadings.values[:, comp_idx])
    order = np.argsort(scores)[::-1]
    return ImportanceRanking(
        names=[loadings.names[j] for j in order],
        scores=scores[order],
    )


@dataclass
class BlackForestFit:
    """Everything produced by one run of the pipeline."""

    kernel: str
    arch: str
    forest: RandomForestRegressor
    feature_names: list[str]
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    oob_mse: float
    oob_explained_variance: float
    test_mse: float
    test_explained_variance: float
    importance: ImportanceRanking
    bottlenecks: list[BottleneckFinding]
    pca: PCA | None = None
    reduced_forest: RandomForestRegressor | None = None
    reduced_feature_names: list[str] = field(default_factory=list)
    reduced_retains_power: bool | None = None
    reduced_test_explained_variance: float | None = None
    #: Matrix options the fit was made with — what :meth:`assess` needs
    #: to build comparable predictor vectors from a fresh campaign.
    response: str = "time"
    counters_used: list[str] | None = None
    include_characteristics: bool = True
    include_machine: bool = False
    pca_first: bool = False
    #: How the training matrix was degraded-and-repaired (dropped rows/
    #: columns, imputed cells — ``MatrixSanitation.to_dict()``), or
    #: ``None`` for a clean campaign. A fit built on partial data
    #: carries that fact with it.
    degradation: dict | None = None
    #: Per-repeat permutation-importance vectors (aligned with
    #: ``feature_names``) when the pipeline ran ``importance_repeats > 1``
    #: refits, else ``None``. The report layer turns these into a
    #: rank-stability diagnostic (Spearman correlation across repeats).
    importance_samples: list[np.ndarray] | None = None

    def report(self, campaign: CampaignResult | None = None, *,
               trace=None, events=None, top_k: int = 10):
        """Build a structured bottleneck :class:`~repro.obs.report.Report`.

        Renders to text/Markdown/HTML via the returned object; pass the
        training ``campaign`` for per-kernel counter tables and span
        ``trace`` / ``events`` for the hot-path and timeline sections.
        """
        from repro.obs.report import build_report

        return build_report(
            self, campaign, trace=trace, events=events, top_k=top_k
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict execution times from full predictor vectors."""
        return self.forest.predict(X)

    def predict_many(self, queries) -> list[np.ndarray]:
        """Batched :meth:`predict`: one stacked forest pass for many
        queued query matrices, bit-identical to the per-query loop
        (see :func:`repro.core.api.predict_many`)."""
        return self.forest.predict_many(queries)

    def assess(self, campaign: CampaignResult):
        """Score this fit against a measured campaign (protocol method).

        Builds the campaign's predictor matrix with the same options the
        fit used (column-aligned by name; PCA-first fits project counter
        columns through the fitted rotation) and compares predictions to
        the measured response. Returns a
        :class:`~repro.core.prediction.PredictionReport`.
        """
        from .prediction import PredictionReport

        with span("blackforest.assess", kernel=campaign.kernel):
            X, y, names = campaign.matrix(
                counters=self.counters_used,
                include_characteristics=self.include_characteristics,
                include_machine=self.include_machine,
                response=self.response,
            )
            if self.pca_first:
                if self.pca is None:
                    raise ValueError("pca_first fit without a fitted PCA")
                counter_order = list(self.pca.loadings.names)
                absent = [n for n in counter_order if n not in names]
                if absent:
                    raise ValueError(
                        f"campaign lacks PCA input counters {absent}"
                    )
                counter_cols = [names.index(n) for n in counter_order]
                in_pca = set(counter_cols)
                other_cols = [j for j in range(len(names)) if j not in in_pca]
                scores = self.pca.transform(X[:, counter_cols])
                X = np.column_stack([scores, X[:, other_cols]])
                names = [
                    f"PC{i + 1}" for i in range(self.pca.n_components_)
                ] + [names[j] for j in other_cols]
            missing = [n for n in self.feature_names if n not in names]
            if missing:
                raise ValueError(
                    f"campaign lacks fitted predictors {missing}"
                )
            X = X[:, [names.index(n) for n in self.feature_names]]
            problems = np.array(
                [r.characteristics.get("size", np.nan) for r in campaign.records]
            )
            return PredictionReport(
                problems=problems,
                predicted_s=self.forest.predict(X),
                measured_s=y,
            )

    def predict_from_dict(self, rows: list[dict[str, float]]) -> np.ndarray:
        """Predict from name->value mappings (missing keys are an error)."""
        X = np.array([[row[name] for name in self.feature_names] for row in rows])
        return self.forest.predict(X)

    @property
    def top_predictors(self) -> list[str]:
        return self.importance.names[:8]

    @property
    def primary_bottleneck(self) -> BottleneckFinding | None:
        return self.bottlenecks[0] if self.bottlenecks else None


class BlackForest:
    """Configurable pipeline front-end.

    Parameters
    ----------
    n_trees:
        Forest size (the R default of 500 is accurate but slow; 300
        keeps campaign-scale analyses interactive with no measurable
        ranking change on <=129-run datasets).
    test_fraction:
        Held-out fraction of the campaign (paper: 20%).
    top_k:
        Predictors retained for the reduced model ("usually, between 6
        and 8", Section 6.1.1).
    use_pca:
        Run the stage-4 PCA refinement (rotated factor loadings).
    pca_variance:
        Variance fraction the retained components must explain; the
        paper's use cases retain 4 components covering >96-97%.
    importance_repeats:
        Forests fitted (with fresh bootstrap/permutation randomness) to
        *average* the permutation importances. Importance rankings among
        highly correlated counters are unstable for a single forest
        (Strobl et al., the paper's [19]); averaging a few fits
        stabilizes the ranking at proportional cost. 1 = single fit.
    pca_first:
        The paper's Section 7 plan: "first applying PCA onto the data to
        both remove correlated variables and reduce dimensionality ...
        leading to easy interpretation of random forest outcome". The
        counter columns are replaced by their varimax-rotated principal
        component *scores* before the forest is fitted; importance is
        then over components, and the bottleneck analysis works on a
        counter ranking induced through the factor loadings.
    n_jobs:
        Worker processes for the forest fits; 1 (default) stays
        in-process, -1 uses every core. The fitted model is bit-for-bit
        independent of ``n_jobs`` (per-tree spawned RNG streams).
    rng:
        Seed for the split, the forest and the permutations.
    """

    def __init__(
        self,
        n_trees: int = 300,
        test_fraction: float = 0.2,
        top_k: int = 6,
        use_pca: bool = True,
        pca_variance: float = 0.96,
        min_samples_leaf: int = 5,
        importance_repeats: int = 1,
        pca_first: bool = False,
        n_jobs: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if importance_repeats < 1:
            raise ValueError("importance_repeats must be >= 1")
        self.n_trees = n_trees
        self.test_fraction = test_fraction
        self.top_k = top_k
        self.use_pca = use_pca
        self.pca_variance = pca_variance
        self.min_samples_leaf = min_samples_leaf
        self.importance_repeats = importance_repeats
        self.pca_first = pca_first
        self.n_jobs = n_jobs
        self._rng = np.random.default_rng(rng)

    def fit(
        self,
        campaign: CampaignResult,
        *args,
        include_characteristics: bool = True,
        include_machine: bool = False,
        counters: list[str] | None = None,
        response: str = "time",
    ) -> BlackForestFit:
        """Run stages 2-5 on a collected campaign.

        All configuration is keyword-only (the unified predictor
        protocol, see docs/api.md). ``response`` selects the modeled
        quantity — "time" (default) or "power", the paper's Section 7
        extension ("one could use other metrics of interest, such as
        power, as response variable").
        """
        if args:
            # Legacy positional order: (include_characteristics,
            # include_machine, counters, response).
            warn_once(
                "BlackForest.fit:positional",
                "passing BlackForest.fit configuration positionally is "
                "deprecated; use keyword arguments "
                "(include_characteristics=..., include_machine=..., "
                "counters=..., response=...)",
            )
            legacy = ("include_characteristics", "include_machine",
                      "counters", "response")
            if len(args) > len(legacy):
                raise TypeError(
                    f"fit() takes at most {len(legacy)} configuration "
                    f"arguments ({len(args)} given)"
                )
            defaults = {
                "include_characteristics": include_characteristics,
                "include_machine": include_machine,
                "counters": counters,
                "response": response,
            }
            defaults.update(dict(zip(legacy, args)))
            include_characteristics = defaults["include_characteristics"]
            include_machine = defaults["include_machine"]
            counters = defaults["counters"]
            response = defaults["response"]
        emit_event(
            "fit.start",
            stage="blackforest",
            kernel=campaign.kernel,
            arch=campaign.arch,
            response=response,
            n_records=len(campaign.records),
        )
        with span(
            "blackforest.fit",
            kernel=campaign.kernel,
            arch=campaign.arch,
            response=response,
        ):
            fit = self._fit_impl(
                campaign,
                include_characteristics=include_characteristics,
                include_machine=include_machine,
                counters=counters,
                response=response,
            )
        emit_event(
            "fit.end",
            stage="blackforest",
            kernel=campaign.kernel,
            arch=campaign.arch,
            oob_explained_variance=fit.oob_explained_variance,
            test_explained_variance=fit.test_explained_variance,
            degraded=fit.degradation is not None,
        )
        self.last_fit_ = fit
        return fit

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the most recent fit (protocol convenience)."""
        return self._require_fit().predict(X)

    def assess(self, campaign: CampaignResult):
        """Score the most recent fit against a measured campaign."""
        return self._require_fit().assess(campaign)

    def _require_fit(self) -> BlackForestFit:
        fit = getattr(self, "last_fit_", None)
        if fit is None:
            raise RuntimeError("call fit() before predict()/assess()")
        return fit

    def _fit_impl(
        self,
        campaign: CampaignResult,
        include_characteristics: bool,
        include_machine: bool,
        counters: list[str] | None,
        response: str,
    ) -> BlackForestFit:
        X, y, names = campaign.matrix(
            # The robust default keeps a counter column alive when only
            # some records lost it (the loss becomes NaN cells below).
            counters=counters if counters is not None
            else campaign.robust_predictor_names,
            include_characteristics=include_characteristics,
            include_machine=include_machine,
            response=response,
            missing="nan",
        )
        # Degraded runs (lost nvprof passes, injected NaN counters) are
        # repaired explicitly — dropped or imputed, never silently fitted
        # through — and the repair is recorded on the fit artifact.
        X, y, names, sanitation = sanitize_matrix(X, y, names)
        if sanitation.degraded:
            warnings.warn(
                f"fitting on a degraded campaign: {sanitation.summary()}",
                RuntimeWarning,
                stacklevel=3,
            )
        # Constant columns (e.g. machine metrics on a single-arch campaign,
        # counters that never fire) carry no signal and bias nothing.
        X, kept, names = drop_constant_columns(X, names)
        if X.shape[1] == 0:
            raise ValueError("no varying predictors in campaign")

        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=self.test_fraction, rng=self._rng
        )

        pca = None
        induced_from: PCA | None = None
        counter_names_used: list[str] = []
        if self.pca_first:
            # Replace the counter columns with rotated component scores
            # (problem/machine characteristics stay as-is).
            from repro.gpusim.counters import CATALOGUE

            counter_cols = [
                j for j, n in enumerate(names) if n in CATALOGUE
            ]
            other_cols = [j for j in range(len(names)) if j not in counter_cols]
            if len(counter_cols) < 2:
                raise ValueError("pca_first needs at least two counters")
            counter_names_used = [names[j] for j in counter_cols]
            pca = PCA(n_components=self.pca_variance, rotate=True)
            pca.fit(X_train[:, counter_cols], names=counter_names_used)
            comp_names = [f"PC{i + 1}" for i in range(pca.n_components_)]

            def to_scores(M):
                scores = pca.transform(M[:, counter_cols])
                return np.column_stack([scores, M[:, other_cols]])

            X_train = to_scores(X_train)
            X_test = to_scores(X_test)
            names = comp_names + [names[j] for j in other_cols]
            induced_from = pca

        forest = RandomForestRegressor(
            n_trees=self.n_trees,
            min_samples_leaf=self.min_samples_leaf,
            importance=True,
            n_jobs=self.n_jobs,
            rng=self._rng,
        ).fit(X_train, y_train, feature_names=names)

        importance_samples: list[np.ndarray] | None = None
        if self.importance_repeats > 1:
            with span(
                "blackforest.importance_repeats",
                repeats=self.importance_repeats,
            ):
                importance_samples = [forest.importance_.copy()]
                averaged = forest.importance_.copy()
                for _ in range(self.importance_repeats - 1):
                    extra = RandomForestRegressor(
                        n_trees=self.n_trees,
                        min_samples_leaf=self.min_samples_leaf,
                        importance=True,
                        n_jobs=self.n_jobs,
                        rng=self._rng,
                    ).fit(X_train, y_train, feature_names=names)
                    importance_samples.append(extra.importance_.copy())
                    averaged += extra.importance_
                forest.importance_ = averaged / self.importance_repeats

        with span("blackforest.importance"):
            ranking = rank_importance(
                forest, X_train, top_k_dependence=max(8, self.top_k)
            )
        if induced_from is not None:
            induced = induced_counter_ranking(ranking, induced_from)
            bottlenecks = detect_bottlenecks(induced, top_k=max(8, self.top_k))
        else:
            bottlenecks = detect_bottlenecks(ranking, top_k=max(8, self.top_k))

        if pca is None and self.use_pca:
            with span("blackforest.pca"):
                pca = PCA(n_components=self.pca_variance, rotate=True)
                pca.fit(X_train, names=names)

        with span("blackforest.reduced_check", k=min(self.top_k, len(names))):
            reduced, retains, full_ev, reduced_ev = reduced_model_check(
                forest, ranking, X_train, y_train, X_test, y_test,
                k=min(self.top_k, len(names)), rng=self._rng,
            )

        return BlackForestFit(
            kernel=campaign.kernel,
            arch=campaign.arch,
            forest=forest,
            feature_names=names,
            X_train=X_train,
            y_train=y_train,
            X_test=X_test,
            y_test=y_test,
            oob_mse=forest.oob_mse_,
            oob_explained_variance=forest.oob_explained_variance_,
            test_mse=mse(y_test, forest.predict(X_test)),
            test_explained_variance=explained_variance(
                y_test, forest.predict(X_test)
            ),
            importance=ranking,
            bottlenecks=bottlenecks,
            pca=pca,
            reduced_forest=reduced,
            reduced_feature_names=ranking.top(min(self.top_k, len(names))),
            reduced_retains_power=retains,
            reduced_test_explained_variance=reduced_ev,
            response=response,
            counters_used=list(counters) if counters is not None else None,
            include_characteristics=include_characteristics,
            include_machine=include_machine,
            pca_first=self.pca_first,
            degradation=sanitation.to_dict() if sanitation.degraded else None,
            importance_samples=importance_samples,
        )
