"""The BlackForest model: the paper's five-stage pipeline (Section 4.2).

1. **data collection** — done by :mod:`repro.profiling` (the campaign
   passed to :meth:`BlackForest.fit`);
2. **random forest construction and validation** — 80:20 random split,
   forest fit on the training partition, validated via OOB error /
   explained variance and the held-out test set;
3. **variable importance analysis** — permutation importance ranking
   plus partial dependence directions for the leaders;
4. **refinement with PCA** (optional, recommended) — principal
   components with varimax-rotated factor loadings over the counter
   matrix, used to interpret correlated variable groups;
5. **results interpretation** — bottleneck detection against the
   performance-pattern library and the reduced-model retention check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import explained_variance, mse
from repro.ml.pca import PCA
from repro.ml.preprocessing import drop_constant_columns, train_test_split
from repro.profiling.campaign import CampaignResult

from .bottleneck import BottleneckFinding, detect_bottlenecks
from .importance import ImportanceRanking, rank_importance, reduced_model_check

__all__ = ["BlackForest", "BlackForestFit", "induced_counter_ranking"]


def induced_counter_ranking(component_ranking, pca: PCA) -> ImportanceRanking:
    """Map a ranking over principal components back onto counters.

    Each counter's induced score is the importance of every component
    weighted by the counter's absolute factor loading on it — the
    "easy interpretation of random forest outcome" the paper's Section 7
    expects from the PCA-first pipeline.
    """
    loadings = pca.loadings
    scores = np.zeros(len(loadings.names))
    for comp_idx, comp in enumerate(loadings.components):
        if comp not in component_ranking.names:
            continue
        imp = max(component_ranking.score_of(comp), 0.0)
        scores += imp * np.abs(loadings.values[:, comp_idx])
    order = np.argsort(scores)[::-1]
    return ImportanceRanking(
        names=[loadings.names[j] for j in order],
        scores=scores[order],
    )


@dataclass
class BlackForestFit:
    """Everything produced by one run of the pipeline."""

    kernel: str
    arch: str
    forest: RandomForestRegressor
    feature_names: list[str]
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    oob_mse: float
    oob_explained_variance: float
    test_mse: float
    test_explained_variance: float
    importance: ImportanceRanking
    bottlenecks: list[BottleneckFinding]
    pca: PCA | None = None
    reduced_forest: RandomForestRegressor | None = None
    reduced_feature_names: list[str] = field(default_factory=list)
    reduced_retains_power: bool | None = None
    reduced_test_explained_variance: float | None = None

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict execution times from full predictor vectors."""
        return self.forest.predict(X)

    def predict_from_dict(self, rows: list[dict[str, float]]) -> np.ndarray:
        """Predict from name->value mappings (missing keys are an error)."""
        X = np.array([[row[name] for name in self.feature_names] for row in rows])
        return self.forest.predict(X)

    @property
    def top_predictors(self) -> list[str]:
        return self.importance.names[:8]

    @property
    def primary_bottleneck(self) -> BottleneckFinding | None:
        return self.bottlenecks[0] if self.bottlenecks else None


class BlackForest:
    """Configurable pipeline front-end.

    Parameters
    ----------
    n_trees:
        Forest size (the R default of 500 is accurate but slow; 300
        keeps campaign-scale analyses interactive with no measurable
        ranking change on <=129-run datasets).
    test_fraction:
        Held-out fraction of the campaign (paper: 20%).
    top_k:
        Predictors retained for the reduced model ("usually, between 6
        and 8", Section 6.1.1).
    use_pca:
        Run the stage-4 PCA refinement (rotated factor loadings).
    pca_variance:
        Variance fraction the retained components must explain; the
        paper's use cases retain 4 components covering >96-97%.
    importance_repeats:
        Forests fitted (with fresh bootstrap/permutation randomness) to
        *average* the permutation importances. Importance rankings among
        highly correlated counters are unstable for a single forest
        (Strobl et al., the paper's [19]); averaging a few fits
        stabilizes the ranking at proportional cost. 1 = single fit.
    pca_first:
        The paper's Section 7 plan: "first applying PCA onto the data to
        both remove correlated variables and reduce dimensionality ...
        leading to easy interpretation of random forest outcome". The
        counter columns are replaced by their varimax-rotated principal
        component *scores* before the forest is fitted; importance is
        then over components, and the bottleneck analysis works on a
        counter ranking induced through the factor loadings.
    n_jobs:
        Worker processes for the forest fits; 1 (default) stays
        in-process, -1 uses every core. The fitted model is bit-for-bit
        independent of ``n_jobs`` (per-tree spawned RNG streams).
    rng:
        Seed for the split, the forest and the permutations.
    """

    def __init__(
        self,
        n_trees: int = 300,
        test_fraction: float = 0.2,
        top_k: int = 6,
        use_pca: bool = True,
        pca_variance: float = 0.96,
        min_samples_leaf: int = 5,
        importance_repeats: int = 1,
        pca_first: bool = False,
        n_jobs: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if importance_repeats < 1:
            raise ValueError("importance_repeats must be >= 1")
        self.n_trees = n_trees
        self.test_fraction = test_fraction
        self.top_k = top_k
        self.use_pca = use_pca
        self.pca_variance = pca_variance
        self.min_samples_leaf = min_samples_leaf
        self.importance_repeats = importance_repeats
        self.pca_first = pca_first
        self.n_jobs = n_jobs
        self._rng = np.random.default_rng(rng)

    def fit(
        self,
        campaign: CampaignResult,
        include_characteristics: bool = True,
        include_machine: bool = False,
        counters: list[str] | None = None,
        response: str = "time",
    ) -> BlackForestFit:
        """Run stages 2-5 on a collected campaign.

        ``response`` selects the modeled quantity — "time" (default) or
        "power", the paper's Section 7 extension ("one could use other
        metrics of interest, such as power, as response variable").
        """
        X, y, names = campaign.matrix(
            counters=counters,
            include_characteristics=include_characteristics,
            include_machine=include_machine,
            response=response,
        )
        # Constant columns (e.g. machine metrics on a single-arch campaign,
        # counters that never fire) carry no signal and bias nothing.
        X, kept, names = drop_constant_columns(X, names)
        if X.shape[1] == 0:
            raise ValueError("no varying predictors in campaign")

        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=self.test_fraction, rng=self._rng
        )

        pca = None
        induced_from: PCA | None = None
        counter_names_used: list[str] = []
        if self.pca_first:
            # Replace the counter columns with rotated component scores
            # (problem/machine characteristics stay as-is).
            from repro.gpusim.counters import CATALOGUE

            counter_cols = [
                j for j, n in enumerate(names) if n in CATALOGUE
            ]
            other_cols = [j for j in range(len(names)) if j not in counter_cols]
            if len(counter_cols) < 2:
                raise ValueError("pca_first needs at least two counters")
            counter_names_used = [names[j] for j in counter_cols]
            pca = PCA(n_components=self.pca_variance, rotate=True)
            pca.fit(X_train[:, counter_cols], names=counter_names_used)
            comp_names = [f"PC{i + 1}" for i in range(pca.n_components_)]

            def to_scores(M):
                scores = pca.transform(M[:, counter_cols])
                return np.column_stack([scores, M[:, other_cols]])

            X_train = to_scores(X_train)
            X_test = to_scores(X_test)
            names = comp_names + [names[j] for j in other_cols]
            induced_from = pca

        forest = RandomForestRegressor(
            n_trees=self.n_trees,
            min_samples_leaf=self.min_samples_leaf,
            importance=True,
            n_jobs=self.n_jobs,
            rng=self._rng,
        ).fit(X_train, y_train, feature_names=names)

        if self.importance_repeats > 1:
            averaged = forest.importance_.copy()
            for _ in range(self.importance_repeats - 1):
                extra = RandomForestRegressor(
                    n_trees=self.n_trees,
                    min_samples_leaf=self.min_samples_leaf,
                    importance=True,
                    n_jobs=self.n_jobs,
                    rng=self._rng,
                ).fit(X_train, y_train, feature_names=names)
                averaged += extra.importance_
            forest.importance_ = averaged / self.importance_repeats

        ranking = rank_importance(forest, X_train, top_k_dependence=max(8, self.top_k))
        if induced_from is not None:
            induced = induced_counter_ranking(ranking, induced_from)
            bottlenecks = detect_bottlenecks(induced, top_k=max(8, self.top_k))
        else:
            bottlenecks = detect_bottlenecks(ranking, top_k=max(8, self.top_k))

        if pca is None and self.use_pca:
            pca = PCA(n_components=self.pca_variance, rotate=True)
            pca.fit(X_train, names=names)

        reduced, retains, full_ev, reduced_ev = reduced_model_check(
            forest, ranking, X_train, y_train, X_test, y_test,
            k=min(self.top_k, len(names)), rng=self._rng,
        )

        return BlackForestFit(
            kernel=campaign.kernel,
            arch=campaign.arch,
            forest=forest,
            feature_names=names,
            X_train=X_train,
            y_train=y_train,
            X_test=X_test,
            y_test=y_test,
            oob_mse=forest.oob_mse_,
            oob_explained_variance=forest.oob_explained_variance_,
            test_mse=mse(y_test, forest.predict(X_test)),
            test_explained_variance=explained_variance(
                y_test, forest.predict(X_test)
            ),
            importance=ranking,
            bottlenecks=bottlenecks,
            pca=pca,
            reduced_forest=reduced,
            reduced_feature_names=ranking.top(min(self.top_k, len(names))),
            reduced_retains_power=retains,
            reduced_test_explained_variance=reduced_ev,
        )
