"""Variable importance analysis (stage 3 of the BlackForest pipeline).

"While building the regression forest, the most important predictors in
determining the response are identified" (paper Section 1). This module
wraps the forest's permutation importance into a ranked, validated
analysis: ranking, top-k retention, and the reduced-model check the
paper performs ("we first validate that those variables keep similar
predictive power as the initial set", Section 6.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.partial_dependence import PartialDependence, partial_dependence

__all__ = ["ImportanceRanking", "rank_importance", "reduced_model_check", "rank_similarity"]


@dataclass
class ImportanceRanking:
    """Ranked permutation importances with their marginal directions."""

    names: list[str]                       # most important first
    scores: np.ndarray                     # %IncMSE-style scores, same order
    dependence: dict[str, PartialDependence] = field(default_factory=dict)

    def top(self, k: int) -> list[str]:
        return self.names[: max(0, k)]

    def score_of(self, name: str) -> float:
        return float(self.scores[self.names.index(name)])

    def rank_of(self, name: str) -> int:
        """0-based rank; raises ValueError for unknown predictors."""
        return self.names.index(name)

    def direction_of(self, name: str) -> str:
        pd = self.dependence.get(name)
        return pd.direction() if pd is not None else "unknown"

    def as_rows(self) -> list[tuple[str, float, str]]:
        return [
            (n, float(s), self.direction_of(n))
            for n, s in zip(self.names, self.scores)
        ]


def rank_importance(
    forest: RandomForestRegressor,
    X: np.ndarray,
    top_k_dependence: int = 8,
) -> ImportanceRanking:
    """Rank predictors and compute partial dependence for the leaders."""
    ranked = forest.ranked_importance()
    names = [n for n, _ in ranked]
    scores = np.array([s for _, s in ranked])
    dependence: dict[str, PartialDependence] = {}
    for name in names[:top_k_dependence]:
        j = forest.feature_names_.index(name)
        dependence[name] = partial_dependence(forest, X, j, feature_name=name)
    return ImportanceRanking(names=names, scores=scores, dependence=dependence)


def reduced_model_check(
    forest: RandomForestRegressor,
    ranking: ImportanceRanking,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    k: int,
    tolerance: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> tuple[RandomForestRegressor, bool, float, float]:
    """Refit on only the top-k predictors and compare predictive power.

    Returns ``(reduced_forest, retains_power, full_score, reduced_score)``
    where the scores are test-set explained variance and ``retains_power``
    is True when the reduced model is within ``tolerance`` of the full
    model (the paper's criterion for keeping "the first few" variables).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    cols = [forest.feature_names_.index(n) for n in ranking.top(k)]
    reduced = RandomForestRegressor(
        n_trees=forest.n_trees,
        min_samples_leaf=forest.min_samples_leaf,
        importance=False,
        n_jobs=forest.n_jobs,
        rng=rng,
    ).fit(X_train[:, cols], y_train, feature_names=ranking.top(k))
    full_score = forest.score(X_test, y_test)
    reduced_score = reduced.score(X_test[:, cols], y_test)
    return reduced, reduced_score >= full_score - tolerance, full_score, reduced_score


def rank_similarity(a: ImportanceRanking, b: ImportanceRanking, k: int = 10) -> float:
    """Similarity of two importance rankings in [0, 1].

    The paper defines "sufficiently similar hardware" as hardware where
    the variable importance ranking is similar (Section 6.2) and calls
    for a "similarity test" in Section 7. This implements it as a
    Rank-Biased-Overlap-style average overlap of the top-k prefixes.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    overlap_sum = 0.0
    depth = min(k, len(a.names), len(b.names))
    if depth == 0:
        return 0.0
    for d in range(1, depth + 1):
        inter = len(set(a.names[:d]) & set(b.names[:d]))
        overlap_sum += inter / d
    return overlap_sum / depth
