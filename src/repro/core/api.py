"""The unified predictor protocol: one call surface for the pipeline.

The toolchain grew three predictor front-ends — :class:`BlackForest`
(bottleneck analysis), :class:`ProblemScalingPredictor` (unseen sizes,
Section 6.1) and :class:`HardwareScalingPredictor` (cross-architecture,
Section 6.2) — each with its own fit/assess conventions. This module
pins the one protocol they all implement now (see docs/api.md):

* ``fit(campaign, ...) -> Fit`` — all configuration keyword-only; the
  returned *fit artifact* carries everything the fit produced **and**
  the ``predict``/``assess`` methods, so results travel as one value;
* ``predict(...)`` — available on both the predictor (delegating to
  its most recent fit) and the fit artifact;
* ``assess(campaign, ...)`` — score against a measured campaign,
  returning a report with ``explained_variance`` /
  ``mean_relative_error``;
* ``report(campaign=None, ...)`` — on the fit artifact: build a
  structured :class:`repro.obs.report.Report` (bottleneck rankings,
  fit quality, counter tables) renderable to text/Markdown/HTML.

Old call surfaces (positional config args, the positional
``report(campaign)`` assess-alias) keep working for one release
through :func:`repro._compat.warn_once` deprecation shims.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["Predictor", "FitArtifact"]


@runtime_checkable
class FitArtifact(Protocol):
    """What ``Predictor.fit`` returns: results plus predict/assess."""

    def predict(self, X): ...

    def assess(self, campaign, **config): ...

    def report(self, campaign=None, **config): ...


@runtime_checkable
class Predictor(Protocol):
    """The unified three-method surface of every pipeline predictor."""

    def fit(self, campaign, **config) -> FitArtifact: ...

    def predict(self, X): ...

    def assess(self, campaign, **config): ...
