"""The unified predictor protocol: one call surface for the pipeline.

The toolchain grew three predictor front-ends — :class:`BlackForest`
(bottleneck analysis), :class:`ProblemScalingPredictor` (unseen sizes,
Section 6.1) and :class:`HardwareScalingPredictor` (cross-architecture,
Section 6.2) — each with its own fit/assess conventions. This module
pins the one protocol they all implement now (see docs/api.md):

* ``fit(campaign, ...) -> Fit`` — all configuration keyword-only; the
  returned *fit artifact* carries everything the fit produced **and**
  the ``predict``/``assess`` methods, so results travel as one value;
* ``predict(...)`` — available on both the predictor (delegating to
  its most recent fit) and the fit artifact;
* ``assess(campaign, ...)`` — score against a measured campaign,
  returning a report with ``explained_variance`` /
  ``mean_relative_error``;
* ``report(campaign=None, ...)`` — on the fit artifact: build a
  structured :class:`repro.obs.report.Report` (bottleneck rankings,
  fit quality, counter tables) renderable to text/Markdown/HTML.

Old call surfaces (positional config args, the positional
``report(campaign)`` assess-alias) keep working for one release
through :func:`repro._compat.warn_once` deprecation shims.

Batched prediction
------------------

The serving layer (:mod:`repro.serve`) answers many queries against one
fit. :func:`predict_many` is the batch entry point: it stacks the queued
query matrices into one feature matrix and runs a *single* vectorized
``predict`` pass over the stack — one ``tree.predict`` per tree for the
whole batch instead of one full forest walk per query — then splits the
result back per query. Because every pipeline predictor's ``predict`` is
an elementwise (per-row) map, the stacked pass is **bit-identical** to
the per-query loop; fit artifacts without a native ``predict_many``
transparently fall back to that loop.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = ["Predictor", "FitArtifact", "predict_many", "stacked_predict"]


def stacked_predict(predict, queries: Sequence) -> list[np.ndarray]:
    """Run row-wise ``predict`` once over stacked queries, split back.

    ``queries`` is a sequence of 2-D feature matrices (one per queued
    request; a single row is the common case). Empty queries contribute
    zero rows and get an empty prediction back. Correct for any
    ``predict`` that maps rows independently — the contract every
    pipeline predictor satisfies — and then bit-identical to
    ``[predict(q) for q in queries]``.
    """
    mats = [np.asarray(q, dtype=float) for q in queries]
    if not mats:
        return []
    widths = {m.shape[1] for m in mats if m.ndim == 2}
    if any(m.ndim != 2 for m in mats) or len(widths) > 1:
        raise ValueError(
            "predict_many queries must all be 2-D with the same number "
            f"of columns; got shapes {[m.shape for m in mats]}"
        )
    lengths = [m.shape[0] for m in mats]
    nonempty = [m for m in mats if m.shape[0]]
    if not nonempty:
        return [np.zeros(0) for _ in mats]
    stacked = nonempty[0] if len(nonempty) == 1 else np.concatenate(nonempty)
    flat = np.asarray(predict(stacked))
    out: list[np.ndarray] = []
    lo = 0
    for n in lengths:
        out.append(flat[lo : lo + n])
        lo += n
    return out


def predict_many(fit, queries: Sequence) -> list[np.ndarray]:
    """Batch-predict ``queries`` against a fit artifact.

    Uses the artifact's native ``predict_many`` (the vectorized stacked
    pass) when it has one, else falls back to a per-query ``predict``
    loop — so *every* FitArtifact supports batching, and the two paths
    agree bit for bit.
    """
    native = getattr(fit, "predict_many", None)
    if callable(native):
        return native(queries)
    return [np.asarray(fit.predict(np.asarray(q, dtype=float)))
            for q in queries]


@runtime_checkable
class FitArtifact(Protocol):
    """What ``Predictor.fit`` returns: results plus predict/assess."""

    def predict(self, X): ...

    def assess(self, campaign, **config): ...

    def report(self, campaign=None, **config): ...


@runtime_checkable
class Predictor(Protocol):
    """The unified three-method surface of every pipeline predictor."""

    def fit(self, campaign, **config) -> FitArtifact: ...

    def predict(self, X): ...

    def assess(self, campaign, **config): ...
