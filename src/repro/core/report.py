"""Human-readable analysis reports.

The end-product of the toolchain ("enhanced with visualization and
reporting capabilities", Section 4.3): a single text report per analysis
combining model validation, the importance figure, partial dependence
directions, PCA loadings, detected bottlenecks and remedies.
"""

from __future__ import annotations

from repro.viz.text import (
    dependence_plot,
    importance_chart,
    loadings_table,
    prediction_table,
    table,
)

from .model import BlackForestFit

__all__ = ["bottleneck_report", "prediction_report_text", "fit_summary"]


def fit_summary(fit: BlackForestFit) -> str:
    """Stage-2 validation numbers (OOB + held-out test)."""
    rows = [
        ("kernel", fit.kernel),
        ("architecture", fit.arch),
        ("training runs", len(fit.y_train)),
        ("test runs", len(fit.y_test)),
        ("predictors", len(fit.feature_names)),
        ("OOB MSE", f"{fit.oob_mse:.4g}"),
        ("OOB explained variance", f"{100 * fit.oob_explained_variance:.1f}%"),
        ("test MSE", f"{fit.test_mse:.4g}"),
        ("test explained variance", f"{100 * fit.test_explained_variance:.1f}%"),
    ]
    if fit.reduced_retains_power is not None:
        rows.append(
            (
                f"reduced model ({len(fit.reduced_feature_names)} vars)",
                f"{100 * fit.reduced_test_explained_variance:.1f}% "
                + ("(retains predictive power)" if fit.reduced_retains_power
                   else "(LOSES predictive power)"),
            )
        )
    return table(["quantity", "value"], rows, title="Random forest validation")


def bottleneck_report(fit: BlackForestFit, top_k: int = 10) -> str:
    """The full bottleneck-analysis report for one campaign."""
    parts = [
        f"=== BlackForest bottleneck analysis: {fit.kernel} on {fit.arch} ===",
        "",
        fit_summary(fit),
        "",
        importance_chart(fit.importance, k=top_k),
    ]
    leader = fit.importance.names[0]
    pd = fit.importance.dependence.get(leader)
    if pd is not None:
        parts += ["", dependence_plot(pd)]
    if fit.pca is not None:
        variance = 100 * float(fit.pca.explained_variance_ratio_.sum())
        parts += [
            "",
            f"PCA refinement: {fit.pca.n_components_} components, "
            f"{variance:.1f}% of variance",
            loadings_table(fit.pca.loadings),
        ]
    parts.append("")
    if fit.bottlenecks:
        parts.append("Detected bottleneck patterns (primary first):")
        for finding in fit.bottlenecks:
            parts += ["", finding.describe()]
    else:
        parts.append("No known bottleneck pattern matched the important variables.")
    return "\n".join(parts)


def prediction_report_text(report, title: str) -> str:
    """Predicted-vs-measured table with accuracy summary."""
    return prediction_table(report, title=title)
