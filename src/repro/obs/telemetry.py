"""Periodic telemetry snapshots: rotating JSONL journal + exposition.

The metrics registry (:mod:`repro.obs.metrics`) answers "what happened
in this process so far"; this module makes that answer *continuously
observable from outside*. A :class:`TelemetryExporter` periodically
samples a snapshot callable and

* appends one ``repro-telemetry/1`` JSONL record per sample to a
  journal file — checkpoint-journal discipline (flush + fsync per
  line, torn tail tolerated by :func:`read_telemetry`), with size-based
  rotation that keeps the ``.jsonl`` suffix on rotated generations so
  artifact lint still recognises them, and a manifest-style provenance
  stamp on the first record of every file;
* renders the same snapshot as a Prometheus-style text exposition
  (:func:`render_prometheus`) — counters, gauges, and the bounded
  timer histograms as ``_bucket``/``_sum``/``_count`` families — which
  the serving frontend exposes through a ``telemetry`` RPC.

Sampling runs on a daemon thread (:meth:`TelemetryExporter.start`);
a failing export is counted and swallowed — telemetry must never take
down the system it observes. The exporter holds no model state and
reads only aggregate snapshots, so predictions are bit-identical with
telemetry on or off.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import threading
import time
from pathlib import Path

__all__ = [
    "TelemetryExporter",
    "read_telemetry",
    "render_prometheus",
    "snapshot_doc",
]

#: Schema tag written as the first field of every telemetry record.
SCHEMA = "repro-telemetry/1"

#: Default seconds between background samples.
DEFAULT_INTERVAL_S = 5.0

#: Default journal size that triggers rotation (1 MiB).
DEFAULT_MAX_BYTES = 1 << 20

#: Default number of rotated generations kept next to the live file.
DEFAULT_MAX_FILES = 3


def _provenance() -> dict:
    from .manifest import SCHEMA as MANIFEST_SCHEMA, git_revision

    return {
        "schema": MANIFEST_SCHEMA,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "host": platform.node(),
        "machine": platform.machine(),
    }


def snapshot_doc(registry) -> dict:
    """Telemetry body for a :class:`~repro.obs.metrics.MetricsRegistry`.

    Counters and gauges export as rendered-key scalars; each timer
    series exports its full bounded-histogram view (summary fields plus
    cumulative buckets) so downstream scrapes can re-render quantiles
    and expositions without the raw samples.
    """
    from .metrics import _render_key

    return {
        "counters": {
            _render_key(k): v for k, v in sorted(registry.counters.items())
        },
        "gauges": {
            _render_key(k): v for k, v in sorted(registry.gauges.items())
        },
        "timers": {
            _render_key(k): registry.timers[k].to_dict()
            for k in sorted(registry.timers)
        },
    }


class TelemetryExporter:
    """Samples a snapshot callable into a rotating JSONL journal.

    ``snapshot_fn`` returns the record body — at minimum the
    ``counters``/``gauges``/``timers`` maps of :func:`snapshot_doc`;
    the serving layer adds ``breakers`` and ``server`` sections, the
    campaign layer a ``progress`` section. The exporter wraps each body
    with the schema tag, a monotonic ``seq``/``elapsed_s``, and the
    configured ``source``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        snapshot_fn,
        *,
        source: str = "serve",
        interval_s: float = DEFAULT_INTERVAL_S,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        if max_files < 1:
            raise ValueError("max_files must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.snapshot_fn = snapshot_fn
        self.source = source
        self.interval_s = float(interval_s)
        self.max_bytes = int(max_bytes)
        self.max_files = int(max_files)
        self.export_errors = 0
        self._seq = 0
        self._t0 = time.monotonic()
        self._stamp_next = True
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- rotation ------------------------------------------------------------

    def _generation(self, index: int) -> Path:
        """Rotated generation path, keeping the ``.jsonl`` suffix
        (``telemetry.jsonl`` -> ``telemetry.1.jsonl``) so directory
        scans that collect artifacts by suffix still pick them up."""
        stem = self.path.name
        if stem.endswith(".jsonl"):
            stem = stem[: -len(".jsonl")]
        return self.path.with_name(f"{stem}.{index}.jsonl")

    def _rotate_if_needed(self) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size < self.max_bytes:
            return
        oldest = self._generation(self.max_files)
        if oldest.exists():
            os.remove(oldest)
        for index in range(self.max_files - 1, 0, -1):
            gen = self._generation(index)
            if gen.exists():
                os.replace(gen, self._generation(index + 1))
        os.replace(self.path, self._generation(1))
        self._stamp_next = True

    # -- export --------------------------------------------------------------

    def export_once(self, extra: dict | None = None) -> dict:
        """Sample, wrap, and append one record; returns the record."""
        body = dict(self.snapshot_fn() or {})
        if extra:
            body.update(extra)
        with self._lock:
            self._rotate_if_needed()
            record = {
                "schema": SCHEMA,
                "seq": self._seq,
                "source": self.source,
                "elapsed_s": time.monotonic() - self._t0,
            }
            if self._stamp_next:
                record["provenance"] = _provenance()
                self._stamp_next = False
            record.update(body)
            record.setdefault("counters", {})
            record.setdefault("gauges", {})
            record.setdefault("timers", {})
            with open(self.path, "a") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._seq += 1
        return record

    def sample(self) -> None:
        """:meth:`export_once`, with failures counted and swallowed —
        a broken disk or a mid-reload snapshot race must never take
        down the process telemetry is observing."""
        try:
            self.export_once()
        except Exception:
            self.export_errors += 1

    # -- background thread ---------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self, *, final_export: bool = True) -> None:
        """Stop the sampler thread; by default flush one last record so
        the journal's tail reflects the state at shutdown."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
        if final_export:
            self.sample()


def read_telemetry(path: str | os.PathLike) -> list[dict]:
    """Load a telemetry journal; a torn trailing line is discarded.

    Same contract as :func:`repro.obs.log.read_events`: a crash (or a
    SIGTERM landing mid-append) loses at most the record being written;
    parsed lines that do not conform to the registered
    ``repro-telemetry/1`` schema are refused with the violated BF6xx
    rule named.
    """
    from repro.analysis.schemas import validate_fields

    path = Path(path)
    if not path.exists():
        return []
    records: list[dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            break  # torn trailing append — drop it and everything after
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unknown telemetry schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        problems = validate_fields(data, SCHEMA)
        if problems:
            raise ValueError(
                f"{path}:{lineno}: telemetry record does not conform to "
                f"{SCHEMA} — " + "; ".join(problems)
            )
        records.append(data)
    return records


# -- Prometheus-style exposition ---------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _parse_rendered(key: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a rendered ``name{k=v,...}`` metric key back into parts."""
    if "{" not in key:
        return key, []
    name, _, inner = key.partition("{")
    labels = []
    for pair in inner.rstrip("}").split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels.append((k, v))
    return name, labels


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + _NAME_RE.sub("_", name) + suffix


def _labels_text(labels: list[tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def render_prometheus(doc: dict) -> str:
    """Text exposition of a telemetry body (or full record).

    Counters become ``<name>_total``, gauges plain gauges, timers full
    histogram families (``_seconds_bucket`` with cumulative ``le``
    bounds, ``_seconds_sum``, ``_seconds_count``, plus exact
    ``_seconds_min``/``_seconds_max`` gauges). Breaker states and the
    serving section export as labelled gauges. Output is sorted, so two
    scrapes of identical state render identical text.
    """
    lines: list[str] = []

    for key in sorted(doc.get("counters", {})):
        name, labels = _parse_rendered(key)
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric}{_labels_text(labels)} "
            f"{_format_value(doc['counters'][key])}"
        )

    for key in sorted(doc.get("gauges", {})):
        name, labels = _parse_rendered(key)
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(
            f"{metric}{_labels_text(labels)} "
            f"{_format_value(doc['gauges'][key])}"
        )

    for key in sorted(doc.get("timers", {})):
        hist = doc["timers"][key]
        name, labels = _parse_rendered(key)
        metric = _metric_name(name, "_seconds")
        lines.append(f"# TYPE {metric} histogram")
        for bound, cum in hist.get("buckets", []):
            le = "+Inf" if bound is None else _format_value(float(bound))
            bucket_labels = labels + [("le", le)]
            lines.append(
                f"{metric}_bucket{_labels_text(bucket_labels)} {cum}"
            )
        lines.append(
            f"{metric}_sum{_labels_text(labels)} "
            f"{_format_value(hist.get('total_s', 0.0))}"
        )
        lines.append(
            f"{metric}_count{_labels_text(labels)} {hist.get('count', 0)}"
        )
        for stat in ("min", "max"):
            value = hist.get(f"{stat}_s")
            if value is not None:
                lines.append(
                    f"{metric}_{stat}{_labels_text(labels)} "
                    f"{_format_value(value)}"
                )

    breakers = doc.get("breakers") or {}
    for key in sorted(breakers):
        lines.append(
            "repro_breaker_state"
            + _labels_text([("key", key), ("state", str(breakers[key]))])
            + " 1"
        )

    server = doc.get("server") or {}
    for field in sorted(server):
        value = server[field]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metric = _metric_name("server." + field)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")

    return "\n".join(lines) + "\n"
