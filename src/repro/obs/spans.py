"""Hierarchical tracing spans with a near-zero-cost disabled default.

The pipeline's wall-clock lives in a handful of nested stages —
``campaign.run`` → ``profile`` → ``gpusim.launch`` →
``gpusim.resolve_access`` on the collection side, ``blackforest.fit`` →
``forest.fit`` → ``forest.tree`` on the statistics side. A
:class:`Tracer` records those stages as a tree of timed
:class:`SpanRecord` objects; :func:`span` is the single instrumentation
primitive threaded through the hot layers.

Design constraints, in order:

1. **Disabled must cost (almost) nothing.** Tracing is off by default;
   ``span()`` then amounts to one module-global load, one ``is None``
   check and returning a shared no-op context manager. No allocation,
   no clock read. The numeric outputs of every pipeline stage are
   identical whether tracing is on or off (pinned by
   ``tests/obs/test_instrumentation.py``).
2. **Process fan-out must merge.** ``Campaign.run(n_jobs)`` and
   ``RandomForestRegressor.fit(n_jobs)`` ship work to a process pool;
   workers collect spans into their own fresh tracer
   (:func:`child_trace`) and return the records, which the parent
   grafts under its current span with :meth:`Tracer.adopt`.
   ``time.perf_counter`` is CLOCK_MONOTONIC on Linux (system-wide), so
   child timestamps line up with the parent's on the platforms this
   project targets.
3. **No global mutable state leaks.** :func:`trace` is a context
   manager that installs a tracer and always restores the previous one;
   nested traces are allowed (the inner one simply shadows the outer).

Tracing state is per-process and not thread-safe by design — the
pipeline parallelizes with processes, never threads.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "trace",
    "child_trace",
    "current_tracer",
    "tracing_enabled",
]


@dataclass
class SpanRecord:
    """One completed (or still-open) span: a timed node of the trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float | None = None
    labels: dict[str, object] = field(default_factory=dict)
    #: pid of the process that recorded the span — distinguishes the
    #: campaign/forest fan-out children from the parent in exports.
    pid: int = 0

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s


class _SpanHandle:
    """Context manager for one live span of one tracer."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._record)
        return None


class _NoopSpan:
    """Shared do-nothing span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


_NOOP = _NoopSpan()


class Tracer:
    """Collects a tree of spans for one traced run."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._ids = itertools.count(1)
        self._pid = os.getpid()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **labels) -> _SpanHandle:
        """Open a child span of the current innermost span."""
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start_s=time.perf_counter(),
            labels=labels,
            pid=self._pid,
        )
        self.records.append(record)
        self._stack.append(record.span_id)
        return _SpanHandle(self, record)

    def _close(self, record: SpanRecord) -> None:
        record.end_s = time.perf_counter()
        # Tolerate mispaired exits (a worker crash mid-span): pop down
        # to — and including — this span if it is anywhere on the stack.
        if record.span_id in self._stack:
            while self._stack and self._stack.pop() != record.span_id:
                pass

    @property
    def current_span_id(self) -> int | None:
        return self._stack[-1] if self._stack else None

    # -- cross-process merge ------------------------------------------------

    def adopt(
        self,
        child_records: list[SpanRecord],
        parent_id: int | None = None,
    ) -> None:
        """Graft a worker's span records under ``parent_id``.

        Children get fresh ids in this tracer's id space (their internal
        parent/child structure is preserved); root spans of the child
        trace attach under ``parent_id`` (default: the tracer's current
        innermost span). Timestamps are kept as recorded — see the
        module docstring for the clock-domain caveat.
        """
        if parent_id is None:
            parent_id = self.current_span_id
        id_map: dict[int, int] = {}
        for rec in child_records:
            id_map[rec.span_id] = next(self._ids)
        for rec in child_records:
            self.records.append(
                SpanRecord(
                    span_id=id_map[rec.span_id],
                    parent_id=(
                        id_map[rec.parent_id]
                        if rec.parent_id in id_map
                        else parent_id
                    ),
                    name=rec.name,
                    start_s=rec.start_s,
                    end_s=rec.end_s,
                    labels=dict(rec.labels),
                    pid=rec.pid,
                )
            )

    # -- queries ------------------------------------------------------------

    def names(self) -> set[str]:
        return {r.name for r in self.records}

    def find(self, name: str) -> list[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def children_of(self, span_id: int | None) -> list[SpanRecord]:
        return [r for r in self.records if r.parent_id == span_id]


# -- module-level tracing state ---------------------------------------------

_ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def span(name: str, **labels):
    """Open a span on the active tracer — or do nothing, cheaply.

    The disabled path performs no allocation and no clock read, which is
    what keeps always-on instrumentation out of the hot-path budget
    (``repro bench`` regression bound, see docs/api.md).
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, **labels)


@contextmanager
def trace():
    """Install a fresh tracer for the duration of the block.

    Yields the :class:`Tracer`; the previously installed tracer (if
    any) is restored on exit, so traces nest without leaking state.
    """
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer()
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@contextmanager
def child_trace():
    """Worker-side collection for process fan-outs.

    A forked worker inherits the parent's ``_ACTIVE`` tracer object —
    including every record the parent made before the fork — so workers
    must *not* append to it. This installs a guaranteed-fresh tracer
    (discarding the inherited one for the duration) and yields it; the
    worker returns ``tracer.records`` alongside its results and the
    parent merges them with :meth:`Tracer.adopt`.
    """
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer()
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
