"""Structured bottleneck report: one artifact from fit + campaign + trace.

The paper's tool is "enhanced with visualization and reporting
capabilities" (Section 4.3); this module is the reporting capability as
a *structured* value. :func:`build_report` assembles a :class:`Report`
— an ordered list of titled sections made of paragraphs, tables and bar
charts — from any fit artifact of the unified predictor protocol
(:class:`~repro.core.model.BlackForestFit`,
:class:`~repro.core.prediction.ProblemScalingFit`,
:class:`~repro.core.hardware.HardwareScalingFit`), optionally joined
with the training campaign (counter tables, occupancy and memory-path
summaries, quarantine record), a span trace (hot-path attribution via
:func:`~repro.obs.export.span_totals`) and a structured event log
(lifecycle timeline). One structure, three renderers: terminal text,
Markdown, and a **self-contained** single-file HTML document whose only
graphics are inline SVG (:func:`repro.viz.svg.svg_bar_chart`) — no
scripts, no external assets, openable straight from a CI artifact list.

Determinism is part of the contract: the report is built only from the
values passed in — never from ambient tracing/metrics state — and every
iteration is over explicitly sorted or ranked sequences, so the same
fit and campaign produce byte-identical output whether tracing was on
or off and however many workers ran the campaign (pinned by
``tests/obs/test_report.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from xml.sax.saxutils import escape

import numpy as np

from repro.ml.metrics import spearman_rank_correlation
from repro.viz.svg import svg_bar_chart
from repro.viz.text import bar_chart, table as text_table

from .export import span_totals

__all__ = ["Report", "ReportSection", "build_report"]

#: Mean pairwise Spearman rho below which a repeated importance ranking
#: is flagged as unstable (the repeats disagree on predictor order).
STABILITY_THRESHOLD = 0.8

#: Counters summarized by the occupancy / memory-path section, in
#: render order (only those present in the campaign appear).
_OCCUPANCY_COUNTERS = (
    "achieved_occupancy",
    "issue_slot_utilization",
    "warp_execution_efficiency",
    "ipc",
)
_MEMORY_COUNTERS = (
    "gld_efficiency",
    "gst_efficiency",
    "gld_throughput",
    "gst_throughput",
    "l2_read_throughput",
    "l2_write_throughput",
    "dram_read_throughput",
    "dram_write_throughput",
)


# -- report structure --------------------------------------------------------


@dataclass
class Para:
    """One paragraph of prose."""

    text: str


@dataclass
class Table:
    """A small table; rows are tuples of already-formatted cells."""

    headers: list[str]
    rows: list[tuple]
    caption: str | None = None


@dataclass
class Chart:
    """A horizontal bar chart (ASCII in text/md, inline SVG in HTML)."""

    labels: list[str]
    values: list[float]
    title: str | None = None


@dataclass
class ReportSection:
    """A titled run of blocks."""

    title: str
    blocks: list = field(default_factory=list)

    def para(self, text: str) -> None:
        self.blocks.append(Para(text))

    def table(self, headers, rows, caption=None) -> None:
        self.blocks.append(Table(list(headers), list(rows), caption))

    def chart(self, labels, values, title=None) -> None:
        self.blocks.append(Chart(list(labels), [float(v) for v in values], title))


@dataclass
class Report:
    """A structured analysis report, renderable to text/Markdown/HTML."""

    title: str
    sections: list[ReportSection] = field(default_factory=list)

    def section(self, title: str) -> ReportSection:
        sec = ReportSection(title)
        self.sections.append(sec)
        return sec

    # -- renderers -----------------------------------------------------------

    def to_text(self) -> str:
        """Terminal rendering (fixed-width tables, ASCII bars)."""
        lines = [f"=== {self.title} ==="]
        for sec in self.sections:
            lines += ["", f"--- {sec.title} ---"]
            for block in sec.blocks:
                lines.append("")
                if isinstance(block, Para):
                    lines.append(block.text)
                elif isinstance(block, Table):
                    lines.append(
                        text_table(block.headers, block.rows, title=block.caption)
                    )
                elif isinstance(block, Chart):
                    lines.append(
                        bar_chart(
                            block.labels,
                            np.array(block.values),
                            title=block.title,
                        )
                    )
        return "\n".join(lines) + "\n"

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering."""
        lines = [f"# {self.title}"]
        for sec in self.sections:
            lines += ["", f"## {sec.title}"]
            for block in sec.blocks:
                lines.append("")
                if isinstance(block, Para):
                    lines.append(block.text)
                elif isinstance(block, Table):
                    if block.caption:
                        lines += [f"**{block.caption}**", ""]
                    lines.append("| " + " | ".join(block.headers) + " |")
                    lines.append("|" + "|".join(" --- " for _ in block.headers) + "|")
                    for row in block.rows:
                        cells = [str(c).replace("|", "\\|") for c in row]
                        lines.append("| " + " | ".join(cells) + " |")
                elif isinstance(block, Chart):
                    chart = bar_chart(
                        block.labels, np.array(block.values), title=block.title
                    )
                    lines += ["```", chart, "```"]
        return "\n".join(lines) + "\n"

    def to_html(self) -> str:
        """Self-contained single-file HTML (inline CSS + SVG, no JS)."""
        parts = [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8">',
            f"<title>{escape(self.title)}</title>",
            "<style>",
            _HTML_STYLE,
            "</style></head><body>",
            f"<h1>{escape(self.title)}</h1>",
        ]
        for sec in self.sections:
            parts.append(f"<section><h2>{escape(sec.title)}</h2>")
            for block in sec.blocks:
                if isinstance(block, Para):
                    parts.append(f"<p>{escape(block.text)}</p>")
                elif isinstance(block, Table):
                    if block.caption:
                        parts.append(f"<p><b>{escape(block.caption)}</b></p>")
                    parts.append("<table><thead><tr>")
                    parts += [f"<th>{escape(h)}</th>" for h in block.headers]
                    parts.append("</tr></thead><tbody>")
                    for row in block.rows:
                        parts.append(
                            "<tr>"
                            + "".join(f"<td>{escape(str(c))}</td>" for c in row)
                            + "</tr>"
                        )
                    parts.append("</tbody></table>")
                elif isinstance(block, Chart):
                    parts.append(
                        svg_bar_chart(
                            block.labels, block.values, title=block.title
                        )
                    )
            parts.append("</section>")
        parts.append("</body></html>")
        return "\n".join(parts) + "\n"

    def render(self, format: str = "text") -> str:
        """Render to ``"text"``, ``"md"``/``"markdown"``, or ``"html"``."""
        if format == "text":
            return self.to_text()
        if format in ("md", "markdown"):
            return self.to_markdown()
        if format == "html":
            return self.to_html()
        raise ValueError(f"unknown report format {format!r}")

    def save(self, path, format: str | None = None) -> Path:
        """Write the report to ``path`` (format inferred from suffix)."""
        path = Path(path)
        if format is None:
            format = {
                ".md": "md",
                ".markdown": "md",
                ".html": "html",
                ".htm": "html",
            }.get(path.suffix.lower(), "text")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(format))
        return path


_HTML_STYLE = """\
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a2733; }
h1 { border-bottom: 2px solid #4878a8; padding-bottom: .3rem; }
h2 { color: #2c4a66; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #c4ccd4; padding: .25rem .6rem;
         font-size: .9rem; text-align: left; }
th { background: #eef2f6; }
svg { display: block; margin: .5rem 0; }\
"""


# -- section builders --------------------------------------------------------


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def _counter_meta(name: str):
    """Catalogue spec for a predictor name, or None for characteristics."""
    from repro.gpusim.counters import CATALOGUE

    return CATALOGUE.get(name)


def _importance_section(report: Report, fit, top_k: int) -> None:
    ranking = fit.importance
    sec = report.section(f"Variable importance ({fit.arch})")
    k = min(top_k, len(ranking.names))
    sec.chart(
        ranking.names[:k],
        [float(s) for s in ranking.scores[:k]],
        title="Permutation importance (%IncMSE)",
    )
    rows = []
    for rank, (name, score) in enumerate(
        zip(ranking.names[:k], ranking.scores[:k]), start=1
    ):
        spec = _counter_meta(name)
        if spec is not None:
            kind, unit = spec.kind, spec.unit
            families = "/".join(spec.families)
            meaning = spec.meaning
        else:
            kind, unit, families = "characteristic", "-", "-"
            meaning = "problem/machine characteristic"
        rows.append(
            (
                rank,
                name,
                f"{float(score):.4g}",
                ranking.direction_of(name),
                kind,
                unit,
                families,
                meaning if len(meaning) <= 60 else meaning[:57] + "...",
            )
        )
    sec.table(
        ["rank", "predictor", "score", "direction", "kind", "unit",
         "families", "meaning"],
        rows,
        caption="Ranked predictors with counter-catalogue metadata",
    )


def _stability_section(report: Report, fit) -> None:
    samples = getattr(fit, "importance_samples", None)
    sec = report.section("Importance stability")
    if not samples or len(samples) < 2:
        sec.para(
            "Not assessed: the fit ran a single importance pass "
            "(importance_repeats=1). Refit with importance_repeats>1 to "
            "quantify ranking stability."
        )
        return
    rhos = []
    for i in range(len(samples)):
        for j in range(i + 1, len(samples)):
            rhos.append(spearman_rank_correlation(samples[i], samples[j]))
    mean_rho = float(np.mean(rhos))
    stable = mean_rho >= STABILITY_THRESHOLD
    sec.para(
        f"Spearman rank correlation across {len(samples)} repeated "
        f"importance fits: mean rho = {mean_rho:.3f} "
        f"(min {min(rhos):.3f}, max {max(rhos):.3f}). "
        + (
            "The ranking is STABLE: repeats agree on predictor order."
            if stable
            else f"The ranking is UNSTABLE (mean rho < "
            f"{STABILITY_THRESHOLD}): treat the reported order as "
            "indicative only and increase campaign size or "
            "importance_repeats."
        )
    )
    # Per-predictor score spread across the repeats, in ranked order.
    names = fit.feature_names
    stack = np.vstack(samples)
    order = [names.index(n) for n in fit.importance.names[:8] if n in names]
    rows = [
        (
            names[j],
            f"{float(stack[:, j].mean()):.4g}",
            f"{float(stack[:, j].min()):.4g}",
            f"{float(stack[:, j].max()):.4g}",
        )
        for j in order
    ]
    sec.table(
        ["predictor", "mean score", "min", "max"],
        rows,
        caption="Score spread across repeats (top predictors)",
    )


def _fit_quality_section(report: Report, fit, campaign) -> None:
    sec = report.section("Fit quality")
    rows = [
        ("kernel", fit.kernel),
        ("architecture", fit.arch),
        ("response", fit.response),
        ("training runs", len(fit.y_train)),
        ("test runs", len(fit.y_test)),
        ("predictors", len(fit.feature_names)),
        ("OOB MSE", _fmt(fit.oob_mse)),
        ("OOB explained variance",
         f"{100 * fit.oob_explained_variance:.1f}%"),
        ("test MSE", _fmt(fit.test_mse)),
        ("test explained variance",
         f"{100 * fit.test_explained_variance:.1f}%"),
    ]
    if fit.reduced_retains_power is not None:
        rows.append(
            (
                f"reduced model ({len(fit.reduced_feature_names)} vars)",
                f"{100 * fit.reduced_test_explained_variance:.1f}% "
                + ("(retains predictive power)" if fit.reduced_retains_power
                   else "(LOSES predictive power)"),
            )
        )
    sec.table(["quantity", "value"], rows)
    _degradation_blocks(sec, fit.degradation, campaign)


def _degradation_blocks(sec: ReportSection, degradation, campaign) -> None:
    if degradation:
        sec.para(
            "Training matrix repair (the fit ran on a degraded "
            "campaign): "
            + json.dumps(degradation, sort_keys=True, default=str)
        )
    quarantined = getattr(campaign, "quarantined", None) if campaign else None
    if quarantined:
        sec.table(
            ["problem", "stage", "attempts", "error"],
            [
                (str(q.problem), q.stage, q.attempts, q.error)
                for q in quarantined
            ],
            caption=f"Quarantined runs ({len(quarantined)})",
        )
    elif campaign is not None:
        sec.para("No quarantined runs: every profiled problem survived.")


def _counter_table_section(report: Report, campaign) -> None:
    if not campaign.records:
        return
    sec = report.section(f"Counters: {campaign.kernel}")
    rows = []
    for name in campaign.counter_names:
        values = np.array(
            [r.counters[name] for r in campaign.records if name in r.counters]
        )
        if values.size == 0:
            continue
        spec = _counter_meta(name)
        unit = spec.unit if spec is not None else "-"
        rows.append(
            (
                name,
                unit,
                f"{float(values.mean()):.4g}",
                f"{float(values.min()):.4g}",
                f"{float(values.max()):.4g}",
            )
        )
    sec.table(
        ["counter", "unit", "mean", "min", "max"],
        rows,
        caption=(
            f"{len(campaign.records)} runs on {campaign.arch} "
            f"({campaign.family})"
        ),
    )


def _pick_counter_rows(campaign, names) -> list[tuple]:
    rows = []
    for name in names:
        values = np.array(
            [r.counters[name] for r in campaign.records if name in r.counters]
        )
        if values.size == 0:
            continue
        spec = _counter_meta(name)
        rows.append(
            (
                name,
                spec.unit if spec is not None else "-",
                f"{float(values.mean()):.4g}",
            )
        )
    return rows


def _occupancy_section(report: Report, campaign) -> None:
    if not campaign.records:
        return
    occ = _pick_counter_rows(campaign, _OCCUPANCY_COUNTERS)
    mem = _pick_counter_rows(campaign, _MEMORY_COUNTERS)
    if not occ and not mem:
        return
    sec = report.section("Occupancy and memory path")
    if occ:
        sec.table(
            ["metric", "unit", "mean"], occ, caption="Occupancy / issue"
        )
    if mem:
        sec.table(
            ["metric", "unit", "mean"], mem, caption="Memory path"
        )


def _hot_path_section(report: Report, trace) -> None:
    records = getattr(trace, "records", trace)
    if not records:
        return
    totals = span_totals(records)
    sec = report.section("Hot paths (span self-time)")
    ranked = sorted(
        totals.items(), key=lambda kv: (-kv[1]["self_s"], kv[0])
    )
    sec.table(
        ["span", "count", "self", "total", "min", "max"],
        [
            (
                name,
                agg["count"],
                f"{agg['self_s'] * 1e3:.2f} ms",
                f"{agg['total_s'] * 1e3:.2f} ms",
                f"{agg['min_s'] * 1e3:.2f} ms",
                f"{agg['max_s'] * 1e3:.2f} ms",
            )
            for name, agg in ranked
        ],
        caption="Exclusive self-time partitions the wall clock; "
        "total is inclusive of children.",
    )
    top = ranked[: min(8, len(ranked))]
    sec.chart(
        [name for name, _ in top],
        [agg["self_s"] for _, agg in top],
        title="Self-time (s) by span name",
    )


def _timeline_section(report: Report, events) -> None:
    evs = getattr(events, "events", events)
    if not evs:
        return
    sec = report.section("Event timeline")
    origin = evs[0].t_s
    sec.table(
        ["+t", "pid", "kind", "detail"],
        [
            (
                f"{(e.t_s - origin) * 1e3:.1f} ms",
                e.pid,
                e.kind,
                ", ".join(
                    f"{k}={e.fields[k]}" for k in sorted(e.fields)
                ),
            )
            for e in evs
        ],
        caption=f"{len(evs)} lifecycle events "
        f"({len({e.kind for e in evs})} kinds)",
    )


def _retained_section(report: Report, fit) -> None:
    sec = report.section("Problem-scaling model")
    sec.para(
        f"Retained predictors ({len(fit.retained)}): "
        + ", ".join(fit.retained)
        + f". Problem characteristics: {', '.join(fit.characteristics)}."
    )
    quality = fit.counter_models.quality_table()
    if quality:
        sec.table(
            ["counter", "model", "R^2", "deviance"],
            [
                (name, kind, f"{r2:.3f}", f"{dev:.4g}")
                for name, kind, r2, dev in quality
            ],
            caption="Counter scaling models (fit on training problems)",
        )


def _hardware_section(report: Report, fit) -> None:
    sec = report.section("Hardware-scaling model")
    sec.para(
        f"Forest trained on {fit.train_arch} over {len(fit.variables)} "
        "predictors; assess with a campaign measured on the target "
        "architecture to score cross-architecture prediction."
    )
    sec.table(
        ["predictor"],
        [(v,) for v in fit.variables],
        caption="Training variables (cross-architecture feature set)",
    )


def _bottleneck_section(report: Report, fit) -> None:
    sec = report.section("Detected bottlenecks")
    if fit.bottlenecks:
        sec.table(
            ["rank", "pattern", "evidence", "best witness rank"],
            [
                (i + 1, b.pattern.key, ", ".join(b.evidence), b.best_rank + 1)
                for i, b in enumerate(fit.bottlenecks)
            ],
        )
        for b in fit.bottlenecks:
            sec.para(b.describe())
    else:
        sec.para(
            "No known bottleneck pattern matched the important variables."
        )


# -- entry point -------------------------------------------------------------


def build_report(
    fit,
    campaign=None,
    *,
    trace=None,
    events=None,
    top_k: int = 10,
) -> Report:
    """Assemble a :class:`Report` from a fit artifact and optional context.

    ``fit`` is any artifact of the unified predictor protocol;
    ``campaign`` (the training/assessment campaign) enables the counter
    and occupancy sections; ``trace`` (a
    :class:`~repro.obs.spans.Tracer` or span-record list) enables the
    hot-path section; ``events`` (an
    :class:`~repro.obs.log.EventLog` or event list) enables the
    timeline. Only the passed-in values are consulted — never ambient
    collector state — which is what makes the output reproducible.
    """
    # Unwrap the problem-scaling artifact: its bottleneck analysis
    # lives on the inner BlackForest fit.
    inner = getattr(fit, "blackforest_fit", None)
    is_problem_scaling = inner is not None
    is_hardware = inner is None and hasattr(fit, "train_arch")

    if is_hardware:
        report = Report(
            f"Hardware-scaling report: {fit.train_arch}"
        )
        _hardware_section(report, fit)
        if fit.degradation:
            sec = report.section("Fit quality")
            _degradation_blocks(sec, fit.degradation, campaign)
        elif campaign is not None:
            sec = report.section("Fit quality")
            _degradation_blocks(sec, None, campaign)
    else:
        bf = inner if is_problem_scaling else fit
        report = Report(
            f"Bottleneck report: {bf.kernel} on {bf.arch}"
        )
        _fit_quality_section(report, bf, campaign)
        _importance_section(report, bf, top_k)
        _stability_section(report, bf)
        _bottleneck_section(report, bf)
        if is_problem_scaling:
            _retained_section(report, fit)

    if campaign is not None:
        _counter_table_section(report, campaign)
        _occupancy_section(report, campaign)
    if trace is not None:
        _hot_path_section(report, trace)
    if events is not None:
        _timeline_section(report, events)
    return report
