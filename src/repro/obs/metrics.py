"""Counter / timer / gauge metrics with label support.

Complements the span tree (:mod:`repro.obs.spans`) with cheap scalar
accounting: how many times did the ``resolve_access`` memo hit, how many
tree nodes did a forest grow, what was the peak campaign size. Like
tracing, collection is **off by default** and the disabled fast path is
one module-global load plus an ``is None`` check.

Metric identity is ``(name, sorted labels)``; the three instrument
kinds follow the usual semantics:

* **counter** — monotonically accumulated float (:func:`inc`);
* **gauge** — last-write-wins float (:func:`set_gauge`);
* **timer** — a bounded :class:`LogHistogram` per series: accumulated
  seconds, observation count, exact min/max, and p50/p95/p99 in
  :meth:`MetricsRegistry.snapshot`, via :func:`observe` or the
  :func:`timer` context manager.

Timer distributions are **bounded**: up to :data:`RAW_SAMPLE_CAP` raw
observations are retained per series (so quantiles over small windows
are exact, byte-for-byte what a sorted-list percentile would return);
past the cap the raw samples are dropped permanently and quantiles are
estimated from fixed log-spaced buckets. Both regimes — and the
transition between them — depend only on the *multiset* of
observations, never on observation or merge order, so a merge of
worker registries yields the same summary regardless of which worker
finished first.

Use :func:`collect` to gather metrics for a block::

    with collect() as metrics:
        campaign = Campaign(kernel, arch).run()
    metrics.snapshot()["counter"]["resolve_access.miss"]
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

__all__ = [
    "LogHistogram",
    "MetricsRegistry",
    "RAW_SAMPLE_CAP",
    "collect",
    "current_metrics",
    "metrics_enabled",
    "inc",
    "set_gauge",
    "observe",
    "timer",
]

#: Raw observations retained per timer series before switching to
#: bucket-only quantile estimation. Must stay comfortably above the
#: window sizes whose quantiles are pinned exactly by tests and
#: downstream reports (currently up to 100 observations).
RAW_SAMPLE_CAP = 512

#: Bucket growth factor: four buckets per octave (~19% bucket width),
#: giving better than ±10% quantile estimates over any latency range
#: with a handful of occupied buckets per series.
_GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(_GROWTH)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _key(name: str, labels: dict) -> tuple:
    if not labels:
        return (name,)
    return (name,) + tuple(sorted(labels.items()))


def _render_key(key: tuple) -> str:
    name = key[0]
    if len(key) == 1:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key[1:])
    return f"{name}{{{inner}}}"


class LogHistogram:
    """Bounded latency distribution with merge-order-independent stats.

    Tracks exact ``count``/``total``/``min``/``max`` plus sparse
    log-spaced bucket counts. While the total observation count is at
    most :data:`RAW_SAMPLE_CAP` the raw samples are also retained and
    quantiles are exact (sorted-list linear interpolation); beyond the
    cap the samples are dropped — permanently, including through any
    later merge — and quantiles interpolate within the bucket holding
    the target rank, clamped to the exact ``[min, max]``.

    Every piece of state is either an order-independent aggregate
    (sums, mins, bucket counts) or derived from the sorted sample
    multiset, and the exact→bucketed transition fires purely on the
    total count, so ``merge(a, b)`` and ``merge(b, a)`` produce
    identical summaries bit for bit.
    """

    __slots__ = (
        "count",
        "total",
        "min_value",
        "max_value",
        "nonpos",
        "buckets",
        "samples",
    )

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        #: Observations ``<= 0`` (clock oddities, explicit zeros) land
        #: in a dedicated underflow bucket — log buckets only cover
        #: strictly positive values.
        self.nonpos = 0
        self.buckets: dict[int, int] = {}
        #: Raw samples, or ``None`` once the series outgrew the cap.
        self.samples: list[float] | None = []

    # -- recording ----------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if value > 0.0:
            idx = math.floor(math.log(value) / _LOG_GROWTH)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.nonpos += 1
        if self.samples is not None:
            self.samples.append(value)
            if self.count > RAW_SAMPLE_CAP:
                self.samples = None

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` in; all aggregates add, samples survive only
        while both sides still have them and the combined count fits
        under the cap (so the exact→bucketed cutover cannot depend on
        merge order)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.min_value < self.min_value:
            self.min_value = other.min_value
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        self.nonpos += other.nonpos
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        if (
            self.samples is None
            or other.samples is None
            or self.count > RAW_SAMPLE_CAP
        ):
            self.samples = None
        else:
            self.samples = self.samples + list(other.samples)

    # -- queries ------------------------------------------------------------

    def _spans(self):
        """Occupied buckets in value order as ``(lo, hi, count)``."""
        if self.nonpos:
            yield (min(self.min_value, 0.0), 0.0, self.nonpos)
        for idx in sorted(self.buckets):
            yield (_GROWTH ** idx, _GROWTH ** (idx + 1), self.buckets[idx])

    def quantile(self, q: float) -> float | None:
        if self.count == 0:
            return None
        if self.samples is not None:
            return _percentile(sorted(self.samples), q)
        target = q * (self.count - 1)
        cum = 0
        value = self.max_value
        for lo, hi, n in self._spans():
            if target < cum + n:
                value = lo + (hi - lo) * ((target - cum) / n)
                break
            cum += n
        return min(max(value, self.min_value), self.max_value)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for exposition,
        Prometheus-style: each bucket counts observations ``<= bound``
        and the final ``+Inf`` bound carries the total count."""
        out: list[tuple[float, int]] = []
        cum = 0
        if self.nonpos:
            cum += self.nonpos
            out.append((0.0, cum))
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            out.append((_GROWTH ** (idx + 1), cum))
        out.append((math.inf, self.count))
        return out

    def summary(self) -> dict:
        summary = {"total_s": self.total, "count": self.count}
        if self.count:
            summary["min_s"] = self.min_value
            summary["max_s"] = self.max_value
            summary["p50_s"] = self.quantile(0.50)
            summary["p95_s"] = self.quantile(0.95)
            summary["p99_s"] = self.quantile(0.99)
        return summary

    def to_dict(self) -> dict:
        """JSON-friendly view for telemetry export (no raw samples)."""
        doc = dict(self.summary())
        doc["exact"] = self.samples is not None
        doc["buckets"] = [
            [None if math.isinf(bound) else bound, cum]
            for bound, cum in self.cumulative_buckets()
        ]
        return doc


class MetricsRegistry:
    """In-memory store for one collection window."""

    def __init__(self) -> None:
        self.counters: dict[tuple, float] = {}
        self.gauges: dict[tuple, float] = {}
        #: One bounded histogram per timer series; see
        #: :class:`LogHistogram` for the exact-vs-bucketed regimes.
        self.timers: dict[tuple, LogHistogram] = {}

    # -- instruments --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, seconds: float, **labels) -> None:
        key = _key(name, labels)
        hist = self.timers.get(key)
        if hist is None:
            hist = self.timers[key] = LogHistogram()
        hist.observe(seconds)

    @contextmanager
    def timer(self, name: str, **labels):
        # monotonic, not perf_counter: timer totals are merged across
        # worker processes, and monotonic is the one clock guaranteed
        # consistent under suspend/NTP slew for such wall-time spans.
        t0 = time.monotonic()
        try:
            yield
        finally:
            self.observe(name, time.monotonic() - t0, **labels)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view, rendered ``name{label=value}`` keys."""
        return {
            "counter": {
                _render_key(k): v for k, v in sorted(self.counters.items())
            },
            "gauge": {
                _render_key(k): v for k, v in sorted(self.gauges.items())
            },
            "timer": {
                _render_key(k): self.timers[k].summary()
                for k in sorted(self.timers)
            },
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold a worker's registry into this one (counters/timers add,
        gauges last-write-wins in ``other``'s favour). Timer histograms
        merge aggregate-wise, so the merged summary does not depend on
        merge order."""
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0.0) + v
        for k, v in other.gauges.items():
            self.gauges[k] = v
        for k, hist in other.timers.items():
            mine = self.timers.get(k)
            if mine is None:
                mine = self.timers[k] = LogHistogram()
            mine.merge(hist)


# -- module-level collection state ------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def current_metrics() -> MetricsRegistry | None:
    return _ACTIVE


def metrics_enabled() -> bool:
    return _ACTIVE is not None


def inc(name: str, value: float = 1.0, **labels) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def observe(name: str, seconds: float, **labels) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, seconds, **labels)


@contextmanager
def timer(name: str, **labels):
    """Time a block into a timer metric; no-op when collection is off."""
    registry = _ACTIVE
    if registry is None:
        yield
        return
    t0 = time.monotonic()
    try:
        yield
    finally:
        registry.observe(name, time.monotonic() - t0, **labels)


@contextmanager
def collect():
    """Install a fresh registry for the block; restores the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    registry = MetricsRegistry()
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
