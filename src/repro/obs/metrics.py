"""Counter / timer / gauge metrics with label support.

Complements the span tree (:mod:`repro.obs.spans`) with cheap scalar
accounting: how many times did the ``resolve_access`` memo hit, how many
tree nodes did a forest grow, what was the peak campaign size. Like
tracing, collection is **off by default** and the disabled fast path is
one module-global load plus an ``is None`` check.

Metric identity is ``(name, sorted labels)``; the three instrument
kinds follow the usual semantics:

* **counter** — monotonically accumulated float (:func:`inc`);
* **gauge** — last-write-wins float (:func:`set_gauge`);
* **timer** — accumulated seconds plus an observation count and the
  per-observation distribution (min/max and p50/p95/p99 in
  :meth:`MetricsRegistry.snapshot`), via :func:`observe` or the
  :func:`timer` context manager. Observations are kept raw and sorted
  at snapshot time, so a merge of worker registries yields the same
  summary regardless of which worker finished first.

Use :func:`collect` to gather metrics for a block::

    with collect() as metrics:
        campaign = Campaign(kernel, arch).run()
    metrics.snapshot()["counter"]["resolve_access.miss"]
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "MetricsRegistry",
    "collect",
    "current_metrics",
    "metrics_enabled",
    "inc",
    "set_gauge",
    "observe",
    "timer",
]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _key(name: str, labels: dict) -> tuple:
    if not labels:
        return (name,)
    return (name,) + tuple(sorted(labels.items()))


def _render_key(key: tuple) -> str:
    name = key[0]
    if len(key) == 1:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key[1:])
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """In-memory store for one collection window."""

    def __init__(self) -> None:
        self.counters: dict[tuple, float] = {}
        self.gauges: dict[tuple, float] = {}
        self.timer_totals: dict[tuple, float] = {}
        self.timer_counts: dict[tuple, int] = {}
        #: Raw per-observation durations, kept so the snapshot can
        #: report order-independent distribution summaries (the lists
        #: are sorted before percentiles are taken).
        self.timer_values: dict[tuple, list[float]] = {}

    # -- instruments --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, seconds: float, **labels) -> None:
        key = _key(name, labels)
        self.timer_totals[key] = self.timer_totals.get(key, 0.0) + seconds
        self.timer_counts[key] = self.timer_counts.get(key, 0) + 1
        self.timer_values.setdefault(key, []).append(seconds)

    @contextmanager
    def timer(self, name: str, **labels):
        # monotonic, not perf_counter: timer totals are merged across
        # worker processes, and monotonic is the one clock guaranteed
        # consistent under suspend/NTP slew for such wall-time spans.
        t0 = time.monotonic()
        try:
            yield
        finally:
            self.observe(name, time.monotonic() - t0, **labels)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view, rendered ``name{label=value}`` keys."""
        return {
            "counter": {
                _render_key(k): v for k, v in sorted(self.counters.items())
            },
            "gauge": {
                _render_key(k): v for k, v in sorted(self.gauges.items())
            },
            "timer": {
                _render_key(k): self._timer_summary(k)
                for k in sorted(self.timer_totals)
            },
        }

    def _timer_summary(self, key: tuple) -> dict:
        summary = {
            "total_s": self.timer_totals[key],
            "count": self.timer_counts[key],
        }
        values = sorted(self.timer_values.get(key, ()))
        if values:
            summary["min_s"] = values[0]
            summary["max_s"] = values[-1]
            summary["p50_s"] = _percentile(values, 0.50)
            summary["p95_s"] = _percentile(values, 0.95)
            summary["p99_s"] = _percentile(values, 0.99)
        return summary

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold a worker's registry into this one (counters/timers add,
        gauges last-write-wins in ``other``'s favour). Timer
        distributions concatenate; they are re-sorted at snapshot time,
        so the merged summary does not depend on merge order."""
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0.0) + v
        for k, v in other.gauges.items():
            self.gauges[k] = v
        for k, v in other.timer_totals.items():
            self.timer_totals[k] = self.timer_totals.get(k, 0.0) + v
        for k, v in other.timer_counts.items():
            self.timer_counts[k] = self.timer_counts.get(k, 0) + v
        for k, vals in other.timer_values.items():
            self.timer_values.setdefault(k, []).extend(vals)


# -- module-level collection state ------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def current_metrics() -> MetricsRegistry | None:
    return _ACTIVE


def metrics_enabled() -> bool:
    return _ACTIVE is not None


def inc(name: str, value: float = 1.0, **labels) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def observe(name: str, seconds: float, **labels) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, seconds, **labels)


@contextmanager
def timer(name: str, **labels):
    """Time a block into a timer metric; no-op when collection is off."""
    registry = _ACTIVE
    if registry is None:
        yield
        return
    t0 = time.monotonic()
    try:
        yield
    finally:
        registry.observe(name, time.monotonic() - t0, **labels)


@contextmanager
def collect():
    """Install a fresh registry for the block; restores the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    registry = MetricsRegistry()
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
