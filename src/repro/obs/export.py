"""Trace exporters: text tree, Chrome-trace JSON, per-stage totals.

Three consumers of one span list:

* :func:`render_text_tree` — the human-facing ``repro trace`` output: an
  indented tree with durations, sibling spans of the same name
  collapsed into one ``name ×N`` line (a campaign profiles dozens of
  problems; nobody wants dozens of identical lines);
* :func:`to_chrome_trace` — ``chrome://tracing`` / Perfetto compatible
  event list (phase ``"X"`` complete events, microsecond timestamps,
  worker processes distinguished by ``pid``);
* :func:`span_totals` — per-span-name aggregate (count, total seconds)
  used by manifests to record where a run's wall-clock went.
"""

from __future__ import annotations

from .spans import SpanRecord

__all__ = ["render_text_tree", "to_chrome_trace", "span_totals"]


def span_totals(records: list[SpanRecord]) -> dict[str, dict]:
    """Aggregate ``{name: {count, total_s}}`` over all spans."""
    totals: dict[str, dict] = {}
    for rec in records:
        agg = totals.setdefault(rec.name, {"count": 0, "total_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += rec.duration_s
    return totals


def to_chrome_trace(records: list[SpanRecord]) -> list[dict]:
    """Chrome-trace "complete" events (load via chrome://tracing).

    Timestamps are microseconds relative to the earliest span so the
    viewer's timeline starts at zero.
    """
    if not records:
        return []
    origin = min(r.start_s for r in records)
    events = []
    for rec in records:
        args = {str(k): v for k, v in rec.labels.items()}
        args["span_id"] = rec.span_id
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "ts": (rec.start_s - origin) * 1e6,
                "dur": rec.duration_s * 1e6,
                "pid": rec.pid,
                "tid": rec.pid,
                "args": args,
            }
        )
    return events


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} µs"


def render_text_tree(records: list[SpanRecord], collapse: bool = True) -> str:
    """Indented text rendering of the span tree.

    With ``collapse`` (default), sibling spans sharing a name fold into
    one line showing the call count and the summed duration, and their
    subtrees are aggregated the same way — a campaign's 30 ``profile``
    spans render as one ``profile ×30`` line over one aggregated
    ``gpusim.launch`` line. Spans recorded by worker processes are
    tagged with their pid.
    """
    if not records:
        return "(empty trace)"
    by_parent: dict[int | None, list[SpanRecord]] = {}
    for rec in records:
        by_parent.setdefault(rec.parent_id, []).append(rec)
    known_ids = {r.span_id for r in records}
    roots = [
        r for r in records
        if r.parent_id is None or r.parent_id not in known_ids
    ]
    main_pid = roots[0].pid if roots else 0

    lines: list[str] = []

    def emit(group: list[SpanRecord], depth: int) -> None:
        rec = group[0]
        total_s = sum(r.duration_s for r in group)
        indent = "  " * depth
        label = rec.name
        if len(group) == 1 and rec.labels:
            # Labels are per-span; a collapsed group would show only the
            # first sibling's, which misleads — omit them there.
            inner = ",".join(f"{k}={v}" for k, v in rec.labels.items())
            label += f"[{inner}]"
        if len(group) > 1:
            label += f" ×{len(group)}"
        pids = {r.pid for r in group}
        suffix = "" if pids == {main_pid} else f" [pids {sorted(pids)}]"
        lines.append(f"{indent}{label:<48s} {_format_duration(total_s)}{suffix}")
        children: list[SpanRecord] = []
        for r in group:
            children.extend(by_parent.get(r.span_id, []))
        walk(children, depth + 1)

    def walk(children: list[SpanRecord], depth: int) -> None:
        if collapse:
            groups: dict[str, list[SpanRecord]] = {}
            for rec in children:
                groups.setdefault(rec.name, []).append(rec)
            for name in groups:
                emit(groups[name], depth)
        else:
            for rec in children:
                emit([rec], depth)

    walk(roots, 0)
    return "\n".join(lines)
