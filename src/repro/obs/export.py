"""Trace exporters: text tree, Chrome-trace JSON, per-stage totals.

Three consumers of one span list:

* :func:`render_text_tree` — the human-facing ``repro trace`` output: an
  indented tree with durations, sibling spans of the same name
  collapsed into one ``name ×N`` line (a campaign profiles dozens of
  problems; nobody wants dozens of identical lines);
* :func:`to_chrome_trace` — ``chrome://tracing`` / Perfetto compatible
  event list (phase ``"M"`` process/thread metadata, phase ``"X"``
  complete events, phase ``"C"`` counter tracks from an optional
  metrics registry; microsecond timestamps, worker processes
  distinguished by ``pid``);
* :func:`span_totals` — per-span-name aggregate (count, total/self
  seconds, min/max durations) used by manifests and the report layer's
  hot-path table to record where a run's wall-clock went.
"""

from __future__ import annotations

from .spans import SpanRecord

__all__ = ["render_text_tree", "to_chrome_trace", "span_totals"]


def span_totals(records: list[SpanRecord]) -> dict[str, dict]:
    """Aggregate ``{name: {count, total_s, self_s, min_s, max_s}}``.

    ``total_s`` is inclusive (a parent's total contains its children);
    ``self_s`` is *exclusive* — the span's own time minus the time spent
    in its direct children — which is what a hot-path ranking needs:
    summed inclusive times over a deep tree count the same wall-clock
    many times, self times partition it. ``min_s``/``max_s`` are the
    extreme single-span durations for the name, exposing skew that a
    total hides (one 2 s ``profile`` among thirty 50 ms ones).
    """
    child_time: dict[int, float] = {}
    for rec in records:
        if rec.parent_id is not None:
            child_time[rec.parent_id] = (
                child_time.get(rec.parent_id, 0.0) + rec.duration_s
            )
    totals: dict[str, dict] = {}
    for rec in records:
        agg = totals.setdefault(
            rec.name,
            {
                "count": 0,
                "total_s": 0.0,
                "self_s": 0.0,
                "min_s": float("inf"),
                "max_s": 0.0,
            },
        )
        agg["count"] += 1
        agg["total_s"] += rec.duration_s
        # Clamp at zero: a child recorded by a worker clock can slightly
        # overhang its adopted parent without meaning negative work.
        agg["self_s"] += max(
            0.0, rec.duration_s - child_time.get(rec.span_id, 0.0)
        )
        agg["min_s"] = min(agg["min_s"], rec.duration_s)
        agg["max_s"] = max(agg["max_s"], rec.duration_s)
    return totals


def to_chrome_trace(
    records: list[SpanRecord], metrics=None
) -> list[dict]:
    """Chrome-trace "complete" events (load via chrome://tracing).

    Timestamps are microseconds relative to the earliest span so the
    viewer's timeline starts at zero. Phase ``"M"`` metadata events
    name each process track (``main`` for the root trace's pid,
    ``worker`` for adopted child-process spans) so Perfetto shows
    labelled rows instead of bare pids. Pass a
    :class:`~repro.obs.metrics.MetricsRegistry` as ``metrics`` to
    append its counters as phase ``"C"`` counter tracks.
    """
    if not records:
        return []
    origin = min(r.start_s for r in records)
    end = max(r.end_s for r in records)
    known_ids = {r.span_id for r in records}
    roots = [
        r for r in records
        if r.parent_id is None or r.parent_id not in known_ids
    ]
    main_pid = roots[0].pid if roots else records[0].pid

    events: list[dict] = []
    for pid in sorted({r.pid for r in records}):
        role = "main" if pid == main_pid else "worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": f"{role} (pid {pid})"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": role},
            }
        )
    for rec in records:
        args = {str(k): v for k, v in rec.labels.items()}
        args["span_id"] = rec.span_id
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "ts": (rec.start_s - origin) * 1e6,
                "dur": rec.duration_s * 1e6,
                "pid": rec.pid,
                "tid": rec.pid,
                "args": args,
            }
        )
    if metrics is not None:
        snapshot = metrics.snapshot()
        for name, value in snapshot["counter"].items():
            # Two samples bracket the trace so the counter renders as a
            # track spanning the timeline, not a single point.
            for ts in (0.0, (end - origin) * 1e6):
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": ts,
                        "pid": main_pid,
                        "args": {"value": value},
                    }
                )
    return events


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} µs"


def render_text_tree(records: list[SpanRecord], collapse: bool = True) -> str:
    """Indented text rendering of the span tree.

    With ``collapse`` (default), sibling spans sharing a name fold into
    one line showing the call count and the summed duration, and their
    subtrees are aggregated the same way — a campaign's 30 ``profile``
    spans render as one ``profile ×30`` line over one aggregated
    ``gpusim.launch`` line. Spans recorded by worker processes are
    tagged with their pid.
    """
    if not records:
        return "(empty trace)"
    by_parent: dict[int | None, list[SpanRecord]] = {}
    for rec in records:
        by_parent.setdefault(rec.parent_id, []).append(rec)
    known_ids = {r.span_id for r in records}
    roots = [
        r for r in records
        if r.parent_id is None or r.parent_id not in known_ids
    ]
    main_pid = roots[0].pid if roots else 0

    lines: list[str] = []

    def emit(group: list[SpanRecord], depth: int) -> None:
        rec = group[0]
        total_s = sum(r.duration_s for r in group)
        indent = "  " * depth
        label = rec.name
        if len(group) == 1 and rec.labels:
            # Labels are per-span; a collapsed group would show only the
            # first sibling's, which misleads — omit them there.
            inner = ",".join(f"{k}={v}" for k, v in rec.labels.items())
            label += f"[{inner}]"
        if len(group) > 1:
            label += f" ×{len(group)}"
        pids = {r.pid for r in group}
        suffix = "" if pids == {main_pid} else f" [pids {sorted(pids)}]"
        lines.append(f"{indent}{label:<48s} {_format_duration(total_s)}{suffix}")
        children: list[SpanRecord] = []
        for r in group:
            children.extend(by_parent.get(r.span_id, []))
        walk(children, depth + 1)

    def walk(children: list[SpanRecord], depth: int) -> None:
        if collapse:
            groups: dict[str, list[SpanRecord]] = {}
            for rec in children:
                groups.setdefault(rec.name, []).append(rec)
            for name in groups:
                emit(groups[name], depth)
        else:
            for rec in children:
                emit([rec], depth)

    walk(roots, 0)
    return "\n".join(lines)
