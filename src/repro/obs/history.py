"""Bench-history journal and the regression watchdog that reads it.

``repro bench`` measures the per-op speedups of the vectorized fast
paths against the retained readable baselines (:mod:`repro.bench`).
This module gives those measurements a durable home and a tripwire:

* :func:`append_history` appends each run as one JSONL line to
  ``benchmarks/history.jsonl`` — schema-tagged, carrying a
  ``repro-manifest/1`` provenance block (git revision, python, host) —
  using the checkpoint-journal write discipline (flush + fsync per
  line) so a crash mid-append can tear at most the final line;
* :func:`read_history` loads the journal, tolerating exactly that torn
  tail (the damaged line and anything after it is discarded, matching
  :func:`repro.profiling.checkpoint` and :func:`repro.obs.log.read_events`);
* :func:`compare_results` is the watchdog: per-op comparison of a fresh
  run against the committed ``BENCH_core.json`` baseline, flagging ops
  whose **speedup** dropped by more than a threshold. Speedups (fast
  path vs in-process baseline, measured on the same host in the same
  run) are the one machine-portable quantity the harness produces —
  raw wall seconds of CI runner A say nothing about runner B.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

__all__ = [
    "append_history",
    "read_history",
    "compare_results",
    "Regression",
]

#: Schema tag of each history line.
SCHEMA = "repro-bench-history/1"

#: Default per-op speedup drop (percent, relative) that trips the watchdog.
DEFAULT_THRESHOLD_PCT = 30.0


def _provenance() -> dict:
    from .manifest import SCHEMA as MANIFEST_SCHEMA, git_revision

    return {
        "schema": MANIFEST_SCHEMA,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "host": platform.node(),
        "machine": platform.machine(),
    }


def append_history(path: str | os.PathLike, payload: dict) -> Path:
    """Append one bench run to the history journal.

    ``payload`` is the ``repro-bench/1`` report dict
    (:func:`repro.bench.write_report`'s structure); the written line
    wraps it with the history schema tag and a manifest-style
    provenance block. The append is flushed and fsynced so the journal
    survives the writing process.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = {
        "schema": SCHEMA,
        "provenance": _provenance(),
        "bench": payload,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return path


def read_history(path: str | os.PathLike) -> list[dict]:
    """Load the history journal; a torn trailing line is discarded.

    Lines that parse but do not conform to the registered
    ``repro-bench-history/1`` schema are refused with the violated
    BF6xx rule named — format drift is a diagnosis, not a KeyError in
    the watchdog.
    """
    from repro.analysis.schemas import validate_fields

    path = Path(path)
    if not path.exists():
        return []
    entries: list[dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            break  # torn trailing append — drop it and everything after
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unknown history schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        problems = validate_fields(data, SCHEMA)
        if problems:
            raise ValueError(
                f"{path}:{lineno}: history line does not conform to "
                f"{SCHEMA} — " + "; ".join(problems)
            )
        entries.append(data)
    return entries


class Regression:
    """One op whose speedup dropped past the threshold."""

    def __init__(
        self, op: str, baseline_speedup: float, current_speedup: float
    ) -> None:
        self.op = op
        self.baseline_speedup = baseline_speedup
        self.current_speedup = current_speedup

    @property
    def drop_pct(self) -> float:
        if self.baseline_speedup == 0.0:
            return 0.0
        return 100.0 * (
            1.0 - self.current_speedup / self.baseline_speedup
        )

    def describe(self) -> str:
        return (
            f"{self.op}: speedup {self.baseline_speedup:.2f}x -> "
            f"{self.current_speedup:.2f}x ({self.drop_pct:.0f}% drop)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Regression({self.describe()})"


def compare_results(
    current: dict,
    baseline: dict,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> list[Regression]:
    """Per-op speedup comparison of two ``repro-bench/1`` payloads.

    Returns the ops whose current speedup is more than
    ``threshold_pct`` percent below the baseline's, sorted by op name.
    Ops present only on one side are skipped — a new benchmark is not a
    regression, and a retired one has nothing to regress.
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be >= 0")
    base_ops = {r["op"]: r for r in baseline.get("results", [])}
    regressions: list[Regression] = []
    for result in current.get("results", []):
        base = base_ops.get(result["op"])
        if base is None:
            continue
        base_speedup = float(base["speedup"])
        cur_speedup = float(result["speedup"])
        if base_speedup <= 0.0:
            continue
        drop = 100.0 * (1.0 - cur_speedup / base_speedup)
        if drop > threshold_pct:
            regressions.append(
                Regression(result["op"], base_speedup, cur_speedup)
            )
    regressions.sort(key=lambda r: r.op)
    return regressions
