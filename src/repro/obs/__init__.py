"""Observability layer: tracing spans, metrics, manifests, exporters.

PPT-style toolkits make per-stage cost measurable; ``repro.obs`` is
that substrate for this pipeline. It is **off by default** and its
disabled fast path is a module-global load plus an ``is None`` check,
so instrumentation can stay in the hot layers permanently without
numeric or timing consequences (pinned by ``tests/obs/``).

Four coordinated pieces:

* **spans** (:func:`span`, :func:`trace`) — hierarchical timed spans
  over the pipeline (``campaign.run`` → ``profile`` →
  ``gpusim.launch`` → ``gpusim.resolve_access``; ``blackforest.fit`` →
  ``forest.fit`` → ``forest.tree``), with worker-process span capture
  (:func:`child_trace`) merged back into the parent trace
  (:meth:`Tracer.adopt`);
* **metrics** (:func:`collect`, :func:`inc`, :func:`timer`,
  :func:`set_gauge`) — labelled counters/timers/gauges, e.g. the
  ``resolve_access`` memo hit/miss counters;
* **events** (:func:`event_log`, :func:`emit`) — a structured log of
  discrete lifecycle occurrences (launch, retry, quarantine, worker
  crash, fit start/end), correlated to the span tree, with an opt-in
  torn-tail-tolerant JSONL sink (:class:`EventLog`);
* **manifests** (:class:`Manifest`, :func:`build_manifest`) —
  provenance sidecars (seed, arch, kernel, git rev, config, span
  timings) written alongside repository artifacts.

On top of those, the *telemetry pipeline* makes a live process
observable from outside: :class:`TelemetryExporter` samples metric
snapshots into a rotating ``repro-telemetry/1`` JSONL journal and
renders Prometheus-style text (:func:`render_prometheus`), while
:class:`FlightRecorder` keeps a bounded ring of recent occurrences and
dumps it atomically as ``repro-flightrec/1`` when the serving layer
crashes, drains on SIGTERM, or trips a circuit breaker. Timer metrics
are bounded too: :class:`LogHistogram` caps retained raw samples and
keeps quantiles merge-order-independent at any scale.

Exporters turn a trace into ``repro trace`` text output
(:func:`render_text_tree`) or Chrome-trace JSON
(:func:`to_chrome_trace`, loadable in chrome://tracing / Perfetto).
The report layer (:func:`build_report`, ``repro report``) joins a fit
artifact, campaign, trace and event log into one text/Markdown/HTML
document; :mod:`repro.obs.history` keeps the bench-history journal the
``repro bench --check`` regression watchdog reads.

Quickstart::

    from repro import Campaign, GTX580, ReductionKernel, obs

    with obs.trace() as tracer:
        Campaign(ReductionKernel(1), GTX580, rng=0).run(n_jobs=2)
    print(obs.render_text_tree(tracer.records))
"""

from .export import render_text_tree, span_totals, to_chrome_trace
from .flightrec import FlightRecorder, read_flightrec
from .history import append_history, compare_results, read_history
from .log import (
    Event,
    EventLog,
    child_event_log,
    current_event_log,
    emit,
    event_log,
    event_log_enabled,
    read_events,
)
from .manifest import Manifest, build_manifest, git_revision
from .metrics import (
    LogHistogram,
    MetricsRegistry,
    collect,
    current_metrics,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
    timer,
)
from .report import Report, ReportSection, build_report
from .telemetry import (
    TelemetryExporter,
    read_telemetry,
    render_prometheus,
    snapshot_doc,
)
from .spans import (
    SpanRecord,
    Tracer,
    child_trace,
    current_tracer,
    span,
    trace,
    tracing_enabled,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "trace",
    "child_trace",
    "current_tracer",
    "tracing_enabled",
    "LogHistogram",
    "MetricsRegistry",
    "collect",
    "current_metrics",
    "metrics_enabled",
    "inc",
    "set_gauge",
    "observe",
    "timer",
    "Event",
    "EventLog",
    "event_log",
    "child_event_log",
    "current_event_log",
    "event_log_enabled",
    "emit",
    "read_events",
    "Manifest",
    "build_manifest",
    "git_revision",
    "render_text_tree",
    "to_chrome_trace",
    "span_totals",
    "Report",
    "ReportSection",
    "build_report",
    "append_history",
    "read_history",
    "compare_results",
    "TelemetryExporter",
    "read_telemetry",
    "render_prometheus",
    "snapshot_doc",
    "FlightRecorder",
    "read_flightrec",
]
