"""Per-run manifests: the provenance record written beside artifacts.

The paper's workflow stores campaign data in a "structured repository";
a :class:`Manifest` is the sidecar that makes a stored campaign
reproducible and auditable after the fact — which seed produced it,
which kernel/architecture pair, which git revision of the tool, what
configuration, and where the collection time went (span totals from the
active trace, when one was recorded).

Manifests are JSON documents with a schema tag
(``repro-manifest/1``); :meth:`ProfileRepository.save
<repro.profiling.repository.ProfileRepository.save>` writes one as
``manifest.json`` under the same :class:`CampaignKey
<repro.profiling.repository.CampaignKey>` as the campaign data.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["Manifest", "git_revision", "build_manifest"]

#: Schema tag written into every manifest.
SCHEMA = "repro-manifest/1"


def git_revision(root: str | Path | None = None) -> str | None:
    """Current git commit hash, or None outside a work tree / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass
class Manifest:
    """Provenance of one run / stored campaign."""

    kernel: str
    arch: str
    tag: str | None = None
    seed: int | None = None
    n_runs: int = 0
    config: dict = field(default_factory=dict)
    #: Per-span-name wall-clock totals, ``{name: {count, total_s}}``.
    timings: dict = field(default_factory=dict)
    #: Metric snapshot (``MetricsRegistry.snapshot()``), when collected.
    metrics: dict = field(default_factory=dict)
    #: SHA-256 of sibling artifact files, ``{filename: hexdigest}`` —
    #: what :meth:`ProfileRepository.verify` checks. Empty for legacy
    #: manifests (``from_json`` tolerates the missing key).
    checksums: dict = field(default_factory=dict)
    git_rev: str | None = None
    python: str = ""
    created_unix: float = 0.0
    schema: str = SCHEMA

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        data = json.loads(text)
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"unknown manifest schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        # Schema-registry validation (function-level import: the obs
        # package must not pull in repro.analysis at init time). A
        # renamed or mistyped field is a named BF6xx drift report, not
        # a TypeError from the dataclass constructor.
        from repro.analysis.schemas import validate_fields

        problems = validate_fields(data, SCHEMA)
        if problems:
            raise ValueError(
                f"manifest does not conform to {SCHEMA} — "
                + "; ".join(problems)
            )
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, path: str | Path) -> "Manifest":
        return cls.from_json(Path(path).read_text())


def build_manifest(
    *,
    kernel: str,
    arch: str,
    tag: str | None = None,
    seed: int | None = None,
    n_runs: int = 0,
    config: dict | None = None,
    trace_records=None,
    metrics=None,
    checksums: dict | None = None,
) -> Manifest:
    """Assemble a manifest from the pieces the pipeline has at hand.

    ``trace_records`` (a list of :class:`~repro.obs.spans.SpanRecord`)
    is folded to per-stage totals; ``metrics`` may be a
    :class:`~repro.obs.metrics.MetricsRegistry` or a ready snapshot
    dict. Both default to the currently installed collectors, so a
    traced CLI run records its own timings with no extra plumbing.
    """
    from .export import span_totals
    from .metrics import MetricsRegistry, current_metrics
    from .spans import current_tracer

    if trace_records is None:
        tracer = current_tracer()
        trace_records = tracer.records if tracer is not None else []
    if metrics is None:
        metrics = current_metrics()
    if isinstance(metrics, MetricsRegistry):
        metrics = metrics.snapshot()
    return Manifest(
        kernel=kernel,
        arch=arch,
        tag=tag,
        seed=seed,
        n_runs=n_runs,
        config=dict(config) if config else {},
        timings=span_totals(trace_records),
        metrics=metrics or {},
        checksums=dict(checksums) if checksums else {},
        git_rev=git_revision(),
        python=platform.python_version(),
        created_unix=time.time(),
    )
