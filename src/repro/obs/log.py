"""Structured event log: discrete pipeline lifecycle events.

Spans measure *where time went*; metrics count *how often things
happened*; the event log records *what happened, in order* — one
:class:`Event` per discrete lifecycle step (a launch retried, a run
quarantined, a worker crashed and was recovered, a fit started and
finished), correlated back to the span tree via the recording span's id
and pid. The report layer renders the merged stream as a timeline
(:func:`repro.obs.report.build_report`), and an opt-in JSONL sink makes
the stream a durable artifact an operator can tail.

Like spans and metrics, collection is **off by default**: the disabled
:func:`emit` path is one module-global load plus an ``is None`` check —
no allocation, no clock read — so emit sites can live permanently in
the campaign/fit layers. Worker processes collect into their own fresh
log (:func:`child_event_log`) and ship the events back for the parent
to :meth:`EventLog.merge`, exactly the way spans are adopted.

The JSONL sink follows the checkpoint-journal discipline
(:mod:`repro.profiling.checkpoint`): every line is flushed and fsynced,
and :func:`read_events` tolerates a torn trailing line (discarded, not
fatal), so a crash mid-write never poisons the log.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Event",
    "EventLog",
    "event_log",
    "child_event_log",
    "current_event_log",
    "event_log_enabled",
    "emit",
    "read_events",
]

#: Schema tag written as the first field of every JSONL event line.
SCHEMA = "repro-events/1"


@dataclass
class Event:
    """One discrete lifecycle occurrence.

    ``kind`` is a dotted lowercase identifier (``campaign.retry``,
    ``fit.start``, ``repository.save``); ``fields`` carries the
    kind-specific payload (kernel, problem, error text, ...). ``span_id``
    and ``pid`` correlate the event with the span tree recorded by the
    same process — an adopted worker span and the worker's events share
    a pid, which is how the report's timeline lines them up.
    """

    kind: str
    t_s: float
    seq: int
    pid: int = 0
    span_id: int | None = None
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "kind": self.kind,
            "t_s": self.t_s,
            "seq": self.seq,
            "pid": self.pid,
            "span_id": self.span_id,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(
            kind=str(data["kind"]),
            t_s=float(data["t_s"]),
            seq=int(data["seq"]),
            pid=int(data.get("pid", 0)),
            span_id=data.get("span_id"),
            fields=dict(data.get("fields") or {}),
        )


class EventLog:
    """Ordered in-memory event collection, with an optional JSONL sink.

    ``path=None`` (default) keeps events purely in memory. With a path,
    every recorded event is also appended to the file — flushed and
    fsynced, one JSON document per line — so the log survives the
    process that wrote it.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.events: list[Event] = []
        self.path = Path(path) if path is not None else None
        self._seq = 0
        self._pid = os.getpid()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, kind: str, **fields) -> Event:
        """Record one event (timestamped now, on the span clock)."""
        from .spans import current_tracer

        tracer = current_tracer()
        self._seq += 1
        event = Event(
            kind=kind,
            t_s=time.perf_counter(),
            seq=self._seq,
            pid=self._pid,
            span_id=tracer.current_span_id if tracer is not None else None,
            fields=fields,
        )
        self.events.append(event)
        if self.path is not None:
            self._append_line(event)
        return event

    def _append_line(self, event: Event) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- cross-process merge -------------------------------------------------

    def merge(self, events: list[Event]) -> None:
        """Fold a worker's events into this log (and its sink, if any).

        Events keep their own pid/seq/span_id — they are worker-local
        facts — and the merged stream is re-sorted by timestamp so the
        timeline reads in wall-clock order regardless of which chunk's
        future resolved first. ``perf_counter`` is CLOCK_MONOTONIC
        system-wide on the platforms this project targets (see
        :mod:`repro.obs.spans`), so cross-process timestamps compare.
        """
        self.events.extend(events)
        self.events.sort(key=lambda e: (e.t_s, e.pid, e.seq))
        if self.path is not None:
            for event in events:
                self._append_line(event)

    # -- queries -------------------------------------------------------------

    def kinds(self) -> set[str]:
        return {e.kind for e in self.events}

    def find(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


def read_events(path: str | os.PathLike) -> list[Event]:
    """Load a JSONL event log written by an :class:`EventLog` sink.

    Tolerant of a torn trailing line — a crash mid-append loses at most
    the event being written (same contract as the campaign checkpoint
    journal). Lines with an unknown schema tag, or tagged lines that
    do not conform to the registered ``repro-events/1`` schema, are
    refused loudly with the violated BF6xx rule named: a silent partial
    parse of a drifted format is worse than an error.
    """
    from repro.analysis.schemas import validate_fields

    path = Path(path)
    events: list[Event] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            break  # torn trailing append — discard it and the rest
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unknown event schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        problems = validate_fields(data, SCHEMA)
        if problems:
            raise ValueError(
                f"{path}:{lineno}: event does not conform to {SCHEMA} — "
                + "; ".join(problems)
            )
        events.append(Event.from_dict(data))
    return events


# -- module-level collection state ------------------------------------------

_ACTIVE: EventLog | None = None


def current_event_log() -> EventLog | None:
    """The installed event log, or None when event logging is disabled."""
    return _ACTIVE


def event_log_enabled() -> bool:
    return _ACTIVE is not None


def emit(kind: str, **fields) -> None:
    """Record an event on the active log — or do nothing, cheaply."""
    log = _ACTIVE
    if log is not None:
        log.emit(kind, **fields)


@contextmanager
def event_log(path: str | os.PathLike | None = None):
    """Install a fresh :class:`EventLog` for the block.

    ``path`` opts into the JSONL sink. The previously installed log (if
    any) is restored on exit, so logs nest without leaking state.
    """
    global _ACTIVE
    previous = _ACTIVE
    log = EventLog(path)
    _ACTIVE = log
    try:
        yield log
    finally:
        _ACTIVE = previous


@contextmanager
def child_event_log():
    """Worker-side collection for process fan-outs.

    A forked worker inherits the parent's ``_ACTIVE`` log object —
    including every event the parent recorded before the fork — so
    workers must *not* append to it (and a parent's *file sink* must
    not be written from two processes). This installs a guaranteed-fresh
    in-memory log and yields it; the worker returns ``log.events``
    alongside its results and the parent merges them with
    :meth:`EventLog.merge`.
    """
    global _ACTIVE
    previous = _ACTIVE
    log = EventLog()
    _ACTIVE = log
    try:
        yield log
    finally:
        _ACTIVE = previous
