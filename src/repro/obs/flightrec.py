"""Flight recorder: a bounded ring of recent events, dumped on crash.

Telemetry journals (:mod:`repro.obs.telemetry`) answer "what do the
aggregates look like"; the flight recorder answers "what were the last
N things that actually happened" at the moment something went wrong.
A :class:`FlightRecorder` keeps a fixed-capacity in-memory ring of
recent occurrences — request outcomes, breaker transitions, reloads,
drain steps — at a few hundred nanoseconds per record, and dumps the
whole ring atomically as a ``repro-flightrec/1`` artifact when the
serving layer hits one of its triggers: SIGTERM, an unhandled worker
exception, or a circuit breaker opening. Post-mortems then start from
the captured tail instead of a reproduction attempt.

The dump is write-then-rename atomic (a crash mid-dump never leaves a
torn artifact) and re-entrant callers are serialized by a lock, so the
signal path and a concurrent worker-exception path cannot interleave.
:meth:`FlightRecorder.dump_once` is the edge-triggered variant used by
the breaker-open hook: only the *first* trigger dumps, so a flapping
breaker cannot overwrite the state captured at first failure.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from collections import deque
from pathlib import Path

__all__ = [
    "FlightRecorder",
    "read_flightrec",
]

#: Schema tag of the dumped artifact.
SCHEMA = "repro-flightrec/1"

#: Default ring capacity (most recent records kept).
DEFAULT_CAPACITY = 256


def _provenance() -> dict:
    from .manifest import SCHEMA as MANIFEST_SCHEMA, git_revision

    return {
        "schema": MANIFEST_SCHEMA,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "host": platform.node(),
        "machine": platform.machine(),
    }


def _atomic_dump(path: Path, text: str) -> None:
    """Write-then-rename with fsync, same discipline as the profile
    repository's atomic helper: a SIGKILL mid-dump leaves either the
    previous artifact or the new one, never a torn hybrid."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class FlightRecorder:
    """Fixed-capacity ring of recent records with atomic crash dumps."""

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.capacity = int(capacity)
        self.dump_count = 0
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._seq = 0
        self._t0 = time.monotonic()
        self._lock = threading.Lock()

    def record(self, kind: str, /, **fields) -> None:
        """Append one record; O(1), bounded, never raises on content
        (fields must be JSON-serializable by dump time). ``kind`` is
        positional-only so a field may itself be named ``kind``."""
        with self._lock:
            self._seq += 1
            self._ring.append(
                {
                    "kind": kind,
                    "seq": self._seq,
                    "t_s": time.monotonic() - self._t0,
                    "fields": fields,
                }
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def events(self) -> list[dict]:
        """Point-in-time copy of the ring, oldest record first."""
        with self._lock:
            return list(self._ring)

    # -- dumping -------------------------------------------------------------

    def _snapshot_doc(self, reason: str) -> dict:
        return {
            "schema": SCHEMA,
            "reason": reason,
            "dump_count": self.dump_count,
            "capacity": self.capacity,
            "recorded": self._seq,
            "dropped": max(0, self._seq - len(self._ring)),
            "provenance": _provenance(),
            "events": list(self._ring),
        }

    def dump(self, reason: str) -> Path:
        """Dump the ring now (SIGTERM / worker-exception triggers).

        Each dump atomically replaces the artifact; ``dump_count`` in
        the payload says how many dumps this process produced, so a
        post-mortem can tell a lone incident from a repeating one.
        """
        with self._lock:
            self.dump_count += 1
            doc = self._snapshot_doc(reason)
        _atomic_dump(self.path, json.dumps(doc, sort_keys=True))
        return self.path

    def dump_once(self, reason: str) -> Path | None:
        """Dump only if nothing has been dumped yet (edge trigger).

        The breaker-open hook uses this: the first open transition
        captures the ring, later flaps (or a later drain) do not
        overwrite the state at first failure. Returns ``None`` when a
        dump already exists.
        """
        with self._lock:
            if self.dump_count:
                return None
            self.dump_count += 1
            doc = self._snapshot_doc(reason)
        _atomic_dump(self.path, json.dumps(doc, sort_keys=True))
        return self.path


def read_flightrec(path: str | os.PathLike) -> dict:
    """Load and schema-validate a dumped flight-recorder artifact."""
    from repro.analysis.schemas import validate_fields

    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown flight-recorder schema {data.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    problems = validate_fields(data, SCHEMA)
    if problems:
        raise ValueError(
            f"{path}: artifact does not conform to {SCHEMA} — "
            + "; ".join(problems)
        )
    return data
