"""GPU performance simulator substrate.

Stands in for the physical GTX580/K20m GPUs and nvprof used by the
paper: architecture descriptions (Table 2), a CUDA occupancy
calculator, coalescing/cache/bank-conflict memory models, an analytical
timing model, and the simulator that turns kernel workload descriptions
into nvprof-style counter vectors plus execution times.
"""

from .arch import GTX480, GTX580, K20M, TABLE2_METRICS, CacheGeometry, GPUArchitecture
from .banks import conflict_degree_for_stride, conflict_degree_from_lanes, replay_count
from .counters import (
    CATALOGUE,
    predictor_counters,
    TABLE1_COUNTERS,
    CounterSet,
    CounterSpec,
    available_counters,
    counters_for,
)
from .microsim import Instruction, MicroResult, MicroSim
from .memory import (
    CacheSim,
    MemoryAccessResult,
    clear_resolve_access_cache,
    coalesce_trace,
    estimate_hit_fraction,
    resolve_access,
    resolve_access_memoization,
    transactions_from_trace,
    transactions_from_trace_scalar,
    transactions_per_request,
)
from .noise import Perturbation
from .occupancy import OccupancyResult, occupancy
from .roofline import RooflinePoint, attainable_gflops, roofline_chart, roofline_point
from .simulator import (
    GPUSimulator,
    LaunchProfile,
    aggregate_launches,
    average_power_w,
    finalize_counters,
    sum_raw,
)
from .timing import LaunchTiming, TimingModel
from .workload import GlobalAccessPattern, KernelWorkload, SharedAccessPattern

__all__ = [
    "GTX480",
    "GTX580",
    "K20M",
    "TABLE2_METRICS",
    "CacheGeometry",
    "GPUArchitecture",
    "conflict_degree_for_stride",
    "conflict_degree_from_lanes",
    "replay_count",
    "CATALOGUE",
    "TABLE1_COUNTERS",
    "CounterSet",
    "CounterSpec",
    "available_counters",
    "predictor_counters",
    "counters_for",
    "CacheSim",
    "Instruction",
    "MicroResult",
    "MicroSim",
    "MemoryAccessResult",
    "clear_resolve_access_cache",
    "coalesce_trace",
    "estimate_hit_fraction",
    "resolve_access",
    "resolve_access_memoization",
    "transactions_from_trace",
    "transactions_from_trace_scalar",
    "transactions_per_request",
    "Perturbation",
    "OccupancyResult",
    "RooflinePoint",
    "attainable_gflops",
    "roofline_chart",
    "roofline_point",
    "occupancy",
    "GPUSimulator",
    "LaunchProfile",
    "aggregate_launches",
    "average_power_w",
    "finalize_counters",
    "sum_raw",
    "LaunchTiming",
    "TimingModel",
    "GlobalAccessPattern",
    "KernelWorkload",
    "SharedAccessPattern",
]
