"""The GPU performance simulator: workloads in, counters + time out.

:class:`GPUSimulator` glues the occupancy calculator, the memory system
model, the bank-conflict model and the timing model together. For every
:class:`~repro.gpusim.workload.KernelWorkload` (one kernel launch) it
produces a :class:`LaunchProfile` holding raw event accumulators and the
timing breakdown; :func:`aggregate_launches` folds the launches of one
application run into the final nvprof-style counter vector
(:class:`~repro.gpusim.counters.CounterSet`) plus the measured execution
time — the observation unit of the paper's data-collection stage.

A seeded multiplicative noise model perturbs the reported time (and the
throughput metrics derived from it), mimicking run-to-run measurement
variance; raw event counts stay deterministic, as they do on real
hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.faults.errors import InjectedFault
from repro.faults.plan import should_inject
from repro.obs import span

from .arch import GPUArchitecture
from .banks import replay_count
from .counters import CounterSet
from .memory import MemoryAccessResult, resolve_access
from .noise import Perturbation
from .occupancy import OccupancyResult, occupancy
from .timing import LaunchTiming, TimingModel
from .workload import KernelWorkload

__all__ = ["LaunchProfile", "GPUSimulator", "aggregate_launches", "sum_raw", "finalize_counters", "average_power_w"]


@dataclass
class LaunchProfile:
    """Raw simulation output for one kernel launch."""

    workload: KernelWorkload
    occupancy: OccupancyResult
    timing: LaunchTiming
    memory: list[MemoryAccessResult]
    raw: dict[str, float] = field(default_factory=dict)


class GPUSimulator:
    """Performance simulator for one GPU architecture.

    Parameters
    ----------
    arch:
        The simulated architecture.
    noise_sigma:
        Dispersion scale of the run perturbation model (see
        :class:`~repro.gpusim.noise.Perturbation`); 0 disables noise,
        1.0 is the calibrated default of the profiling layer.
    rng:
        Seed or generator for the noise model.
    """

    def __init__(
        self,
        arch: GPUArchitecture,
        noise_sigma: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        self.arch = arch
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(rng)
        self._timing = TimingModel(arch)

    # -- single launch -------------------------------------------------------

    def launch(
        self, wl: KernelWorkload, perturbation: Perturbation | None = None
    ) -> LaunchProfile:
        """Simulate one kernel launch under an optional run perturbation."""
        with span("gpusim.launch", workload=wl.name):
            return self._launch(wl, perturbation)

    def _launch(
        self, wl: KernelWorkload, perturbation: Perturbation | None = None
    ) -> LaunchProfile:
        arch = self.arch
        pert = perturbation if perturbation is not None else Perturbation.none()
        occ = occupancy(
            arch, wl.threads_per_block, wl.regs_per_thread, wl.shared_mem_per_block
        )

        accesses = wl.global_accesses
        fault = should_inject("gpusim.launch", workload=wl.name, arch=arch.name)
        if fault is not None:
            if fault.mode == "raise":
                raise InjectedFault(
                    f"injected simulator failure launching {wl.name!r} "
                    f"on {arch.name}"
                )
            if fault.mode == "truncate_trace":
                frac = float(fault.payload_dict.get("fraction", 0.5))
                accesses = [_truncate_trace(a, frac) for a in accesses]

        mem = [
            resolve_access(a, arch, cache_factor=pert.cache_factor)
            for a in accesses
        ]

        shared_loads = sum(s.requests for s in wl.loads("shared"))
        shared_stores = sum(s.requests for s in wl.stores("shared"))
        shared_load_replays = pert.conflict_factor * sum(
            replay_count(s.requests, s.conflict_degree) for s in wl.loads("shared")
        )
        shared_store_replays = pert.conflict_factor * sum(
            replay_count(s.requests, s.conflict_degree) for s in wl.stores("shared")
        )
        shared_replays = shared_load_replays + shared_store_replays
        shared_transactions = shared_loads + shared_stores + shared_replays

        global_replays = sum(m.replays for m in mem)
        inst_executed = wl.executed_instructions
        inst_issued = inst_executed + shared_replays + global_replays

        dram_bytes = sum(m.dram_bytes for m in mem)
        issued_per_warp = inst_issued / wl.total_warps

        timing = self._timing.evaluate(
            grid_blocks=wl.grid_blocks,
            warps_per_block=wl.warps_per_block,
            occ=occ,
            issued_per_warp=issued_per_warp,
            mem=mem,
            total_warps=wl.total_warps,
            dram_bytes=dram_bytes,
            shared_transactions=shared_transactions,
            memory_ilp=wl.memory_ilp,
            critical_path_cycles=wl.critical_path_cycles,
            sched_efficiency=pert.sched_efficiency,
            dram_efficiency=pert.dram_efficiency,
        )

        loads = [m for m in mem if m.kind == "load"]
        stores = [m for m in mem if m.kind == "store"]

        raw = {
            # events
            "shared_load": float(shared_loads),
            "shared_store": float(shared_stores),
            "gld_request": float(sum(m.requests for m in loads)),
            "gst_request": float(sum(m.requests for m in stores)),
            "global_store_transaction": float(sum(m.transactions for m in stores)),
            "l1_global_load_hit": float(sum(m.l1_hits for m in loads)),
            "l1_global_load_miss": float(sum(m.l1_misses for m in loads)),
            "l2_read_transactions": float(sum(m.l2_transactions for m in loads)),
            "l2_write_transactions": float(sum(m.l2_transactions for m in stores)),
            "inst_executed": float(inst_executed),
            "inst_issued": float(inst_issued),
            "branch": float(wl.branches),
            "divergent_branch": float(wl.divergent_branches),
            "active_cycles": timing.cycles,
            "active_warps": timing.avg_resident_warps * timing.cycles,
            # replay decomposition
            "shared_replays": shared_replays,
            "shared_load_replays": shared_load_replays,
            "shared_store_replays": shared_store_replays,
            "global_replays": global_replays,
            # byte flows for throughput metrics
            "gld_requested_bytes": float(sum(m.requested_bytes for m in loads)),
            "gst_requested_bytes": float(sum(m.requested_bytes for m in stores)),
            "gld_transaction_bytes": float(
                sum(m.transactions * m.transaction_bytes for m in loads)
            ),
            "gst_transaction_bytes": float(
                sum(m.transactions * m.transaction_bytes for m in stores)
            ),
            "l2_read_bytes": float(
                sum(m.l2_transactions * self.arch.l2_line_bytes for m in loads)
            ),
            "l2_write_bytes": float(
                sum(m.l2_transactions * self.arch.l2_line_bytes for m in stores)
            ),
            "dram_read_bytes": float(sum(m.dram_bytes for m in loads)),
            "dram_write_bytes": float(sum(m.dram_bytes for m in stores)),
            # weighted utilization inputs
            "active_thread_instructions": wl.avg_active_threads * inst_executed,
            "ldst_instructions": float(wl.ldst_instructions),
            "shared_transactions": shared_transactions,
            "sm_cycles_weighted": timing.cycles * timing.n_active_sms,
            "time_s": timing.time_s,
            "launches": 1.0,
            # dynamic energy (J) for the power-response extension (paper
            # Section 7: power draw as an alternative response variable)
            "dynamic_energy_j": 1e-9 * (
                inst_issued * arch.energy_per_instruction_nj
                + dram_bytes * arch.energy_per_dram_byte_nj
                + sum(m.l2_transactions for m in mem)
                * arch.energy_per_l2_transaction_nj
                + shared_transactions * arch.energy_per_shared_transaction_nj
            ),
        }
        return LaunchProfile(
            workload=wl, occupancy=occ, timing=timing, memory=mem, raw=raw
        )

    # -- full application run --------------------------------------------------

    def run(
        self,
        workloads: list[KernelWorkload],
        perturbation: Perturbation | None = None,
    ) -> tuple[CounterSet, float, list[LaunchProfile]]:
        """Simulate an application run (a sequence of launches).

        Returns the aggregated counter vector, the (noisy) total
        execution time in seconds, and the per-launch profiles. When no
        perturbation is given, one is drawn from the simulator's noise
        model (``noise_sigma`` scales its dispersion; 0 = deterministic).
        """
        if not workloads:
            raise ValueError("at least one kernel launch required")
        if perturbation is None:
            perturbation = Perturbation.draw(self._rng, scale=self.noise_sigma)
        profiles = [self.launch(wl, perturbation) for wl in workloads]
        counters, time_s = aggregate_launches(
            self.arch, profiles, time_scale=perturbation.time_jitter
        )
        return counters, time_s, profiles


def _truncate_trace(access, fraction: float):
    """A torn sampled address trace: keep the leading ``fraction`` of
    requests (at least one). Patterns without traces are untouched."""
    if access.addresses is None:
        return access
    trace = np.asarray(access.addresses)
    keep = max(1, int(math.ceil(trace.shape[0] * fraction)))
    if keep >= trace.shape[0]:
        return access
    return replace(access, addresses=trace[:keep])


def sum_raw(profiles: list[LaunchProfile]) -> dict[str, float]:
    """Sum the raw per-launch accumulators of an application run.

    The summed totals are a compact, cacheable representation: the
    final counter vector can be (re-)derived from them with any noise
    factor via :func:`finalize_counters`.
    """
    if not profiles:
        raise ValueError("no launches to aggregate")
    total: dict[str, float] = {}
    for p in profiles:
        for key, value in p.raw.items():
            total[key] = total.get(key, 0.0) + value
    return total


def aggregate_launches(
    arch: GPUArchitecture,
    profiles: list[LaunchProfile],
    time_scale: float = 1.0,
) -> tuple[CounterSet, float]:
    """Fold per-launch raw accumulators into the final counter vector."""
    return finalize_counters(arch, sum_raw(profiles), time_scale)


def average_power_w(
    arch: GPUArchitecture, total: dict[str, float], time_s: float
) -> float:
    """Average board power over a run: static draw plus dynamic energy
    spread over the wall time, clipped to the board TDP."""
    if time_s <= 0:
        return arch.static_power_w
    power = arch.static_power_w + total.get("dynamic_energy_j", 0.0) / time_s
    return float(min(power, arch.tdp_w))


def finalize_counters(
    arch: GPUArchitecture,
    total: dict[str, float],
    time_scale: float = 1.0,
) -> tuple[CounterSet, float]:
    """Derive the nvprof-style counter vector from summed raw totals."""
    time_s = total["time_s"] * time_scale
    cycles = total["active_cycles"]
    sm_cycles = total["sm_cycles_weighted"]
    inst_exec = total["inst_executed"]
    inst_issued = total["inst_issued"]

    values: dict[str, float] = {
        "shared_load": total["shared_load"],
        "shared_store": total["shared_store"],
        "gld_request": total["gld_request"],
        "gst_request": total["gst_request"],
        "global_store_transaction": total["global_store_transaction"],
        "l2_read_transactions": total["l2_read_transactions"],
        "l2_write_transactions": total["l2_write_transactions"],
        "inst_issued": inst_issued,
        "inst_executed": inst_exec,
        "branch": total["branch"],
        "divergent_branch": total["divergent_branch"],
        "active_cycles": cycles,
        "active_warps": total["active_warps"],
    }

    if arch.family == "fermi":
        values["l1_global_load_hit"] = total["l1_global_load_hit"]
        values["l1_global_load_miss"] = total["l1_global_load_miss"]
        values["l1_shared_bank_conflict"] = total["shared_replays"]
    else:
        values["shared_load_replay"] = total["shared_load_replays"]
        values["shared_store_replay"] = total["shared_store_replays"]

    # ---- derived metrics ----
    gbs = lambda nbytes: nbytes / time_s / 1e9 if time_s > 0 else 0.0

    max_warps = arch.max_warps_per_sm
    values["ipc"] = inst_exec / sm_cycles if sm_cycles > 0 else 0.0
    # An issue slot fits dispatch_units_per_scheduler instructions
    # (Kepler dual-dispatches); like nvprof, the utilization of the
    # slots cannot exceed 100%.
    issue_slots = sm_cycles * arch.warp_schedulers * arch.dispatch_units_per_scheduler
    values["issue_slot_utilization"] = (
        min(100.0, 100.0 * inst_issued / issue_slots) if sm_cycles > 0 else 0.0
    )
    values["achieved_occupancy"] = (
        total["active_warps"] / (cycles * max_warps) if cycles > 0 else 0.0
    )
    values["inst_replay_overhead"] = (
        (inst_issued - inst_exec) / inst_exec if inst_exec > 0 else 0.0
    )
    values["shared_replay_overhead"] = (
        total["shared_replays"] / inst_exec if inst_exec > 0 else 0.0
    )
    values["global_replay_overhead"] = (
        total["global_replays"] / inst_exec if inst_exec > 0 else 0.0
    )
    values["warp_execution_efficiency"] = (
        100.0 * total["active_thread_instructions"] / (inst_exec * 32.0)
        if inst_exec > 0
        else 0.0
    )
    values["gld_requested_throughput"] = gbs(total["gld_requested_bytes"])
    values["gst_requested_throughput"] = gbs(total["gst_requested_bytes"])
    values["gld_throughput"] = gbs(total["gld_transaction_bytes"])
    values["gst_throughput"] = gbs(total["gst_transaction_bytes"])
    values["gld_efficiency"] = (
        100.0 * total["gld_requested_bytes"] / total["gld_transaction_bytes"]
        if total["gld_transaction_bytes"] > 0
        else 100.0
    )
    values["gst_efficiency"] = (
        100.0 * total["gst_requested_bytes"] / total["gst_transaction_bytes"]
        if total["gst_transaction_bytes"] > 0
        else 100.0
    )
    values["l2_read_throughput"] = gbs(total["l2_read_bytes"])
    values["l2_write_throughput"] = gbs(total["l2_write_bytes"])
    values["dram_read_throughput"] = gbs(total["dram_read_bytes"])
    values["dram_write_throughput"] = gbs(total["dram_write_bytes"])

    # LSU utilization on nvprof's 0-10 scale: transactions per cycle per SM
    # against one transaction/cycle capacity.
    lsu_rate = (
        (total["shared_transactions"] + total["gld_request"] + total["gst_request"])
        / sm_cycles
        if sm_cycles > 0
        else 0.0
    )
    values["ldst_fu_utilization"] = float(min(10.0, 10.0 * lsu_rate))

    shared_total = total["shared_load"] + total["shared_store"]
    values["shared_efficiency"] = (
        100.0 * shared_total / total["shared_transactions"]
        if total["shared_transactions"] > 0
        else 100.0
    )
    values["sm_efficiency"] = 100.0 * min(
        1.0, sm_cycles / (cycles * arch.n_sms) if cycles > 0 else 0.0
    )

    return CounterSet(arch.family, values), time_s
