"""Cycle-level SM micro-simulator — the analytic timing model's referee.

The production path (:class:`repro.gpusim.timing.TimingModel`) prices a
launch with closed-form bounds. This module provides an independent
*event-driven* model of one streaming multiprocessor — warps, a
round-robin dual-issue scheduler, scoreboarded latencies, an LSU pipe
and a bounded memory system — so the analytic bounds can be
cross-checked on small synthetic programs (see
``tests/gpusim/test_microsim.py``). It is intentionally not used for
data collection (it is orders of magnitude slower); its job is to keep
the fast model honest.

A *program* is a per-warp instruction list; each instruction has an
issue port, a result latency, and a dependency flag:

* ``alu``    — arithmetic; issues on the scheduler ports.
* ``sld``/``sst`` — shared memory; occupies the LSU pipe for
  ``lsu_cycles`` and returns after the shared latency (conflict degree
  multiplies both).
* ``gld``    — global load; occupies a memory-request slot (bounded
  in-flight concurrency, the micro analogue of MWP) and returns after
  the memory latency.
* ``gst``    — global store; fire-and-forget (pipe occupancy only).
* ``sync``   — barrier across all warps of the block (modeled here as
  all warps of the SM, which matches single-block test programs).

``dependent=True`` makes the instruction wait for the previous
instruction's result (a serial chain); otherwise only issue-order is
preserved (back-to-back issue, latency overlapped).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .arch import GPUArchitecture

__all__ = ["Instruction", "MicroSim", "MicroResult"]

_PORTS = ("alu", "sld", "sst", "gld", "gst", "sync")


@dataclass(frozen=True)
class Instruction:
    """One warp-level instruction of a micro program."""

    port: str
    #: Wait for the previous instruction's *result* (true dependency)
    #: rather than just its issue slot.
    dependent: bool = False
    #: Shared-memory conflict degree (sld/sst only).
    conflict_degree: int = 1

    def __post_init__(self) -> None:
        if self.port not in _PORTS:
            raise ValueError(f"unknown port {self.port!r}")
        if self.conflict_degree < 1:
            raise ValueError("conflict_degree must be >= 1")


@dataclass
class MicroResult:
    """Outcome of a micro simulation."""

    cycles: int
    instructions_issued: int
    #: Per-warp completion cycles.
    completion: list[int] = field(default_factory=list)

    def ipc(self, n_warps: int) -> float:
        return self.instructions_issued / self.cycles if self.cycles else 0.0


class MicroSim:
    """Event-driven single-SM simulator.

    Parameters
    ----------
    arch:
        Supplies latencies, issue width and LSU width.
    max_outstanding_loads:
        Memory requests in flight per SM (the MWP analogue); defaults to
        ``mem_latency / departure_delay`` like the analytic model.
    """

    def __init__(
        self,
        arch: GPUArchitecture,
        max_outstanding_loads: int | None = None,
    ) -> None:
        self.arch = arch
        self.issue_width = int(
            min(
                arch.warp_schedulers * arch.dispatch_units_per_scheduler,
                max(arch.cores_per_sm // arch.warp_size, 1),
            )
        )
        self.lsu_cycles = max(1, arch.warp_size // arch.lsu_units)
        self.mem_latency = int(arch.dram_latency_cycles)
        self.shared_latency = int(arch.shared_latency_cycles)
        if max_outstanding_loads is None:
            max_outstanding_loads = max(
                1, int(arch.dram_latency_cycles / arch.departure_delay_coalesced)
            )
        self.max_outstanding = max_outstanding_loads

    def run(self, program: list[Instruction], n_warps: int,
            max_cycles: int = 10_000_000) -> MicroResult:
        """Execute ``n_warps`` copies of ``program`` to completion."""
        if n_warps < 1:
            raise ValueError("n_warps must be >= 1")
        if not program:
            return MicroResult(cycles=0, instructions_issued=0,
                               completion=[0] * n_warps)

        pc = [0] * n_warps                  # next instruction index
        issue_ready = [0] * n_warps         # cycle the warp may issue again
        result_ready = [0] * n_warps        # cycle the last result lands
        completion = [0] * n_warps
        waiting_sync = [False] * n_warps

        lsu_free = 0                        # cycle the LSU pipe frees up
        inflight: list[int] = []            # heap of load completion cycles
        issued = 0
        n_done = 0
        cycle = 0
        rr = 0                              # round-robin pointer

        n_instr = len(program)

        while n_done < n_warps:
            if cycle > max_cycles:
                raise RuntimeError("micro simulation exceeded max_cycles")

            # retire completed loads
            while inflight and inflight[0] <= cycle:
                heapq.heappop(inflight)

            # barrier release: when every live warp waits, release all
            if all(waiting_sync[w] or pc[w] >= n_instr for w in range(n_warps)) \
                    and any(waiting_sync):
                for w in range(n_warps):
                    if waiting_sync[w]:
                        waiting_sync[w] = False
                        pc[w] += 1
                        issue_ready[w] = cycle + 1
                        if pc[w] >= n_instr:
                            completion[w] = cycle
                            n_done += 1

            slots = self.issue_width
            scanned = 0
            while slots > 0 and scanned < n_warps:
                w = (rr + scanned) % n_warps
                scanned += 1
                if pc[w] >= n_instr or waiting_sync[w]:
                    continue
                if issue_ready[w] > cycle:
                    continue
                instr = program[pc[w]]
                if instr.dependent and result_ready[w] > cycle:
                    continue

                if instr.port == "sync":
                    # only enter the barrier once the warp's results are in
                    if result_ready[w] > cycle:
                        continue
                    waiting_sync[w] = True
                    issued += 1
                    slots -= 1
                    continue

                if instr.port in ("sld", "sst"):
                    if lsu_free > cycle:
                        continue
                    occupancy = self.lsu_cycles * instr.conflict_degree
                    lsu_free = cycle + occupancy
                    if instr.port == "sld":
                        result_ready[w] = cycle + self.shared_latency + occupancy
                    issue_ready[w] = cycle + 1
                elif instr.port == "gld":
                    if len(inflight) >= self.max_outstanding:
                        continue
                    heapq.heappush(inflight, cycle + self.mem_latency)
                    result_ready[w] = cycle + self.mem_latency
                    issue_ready[w] = cycle + 1
                elif instr.port == "gst":
                    issue_ready[w] = cycle + 1
                else:  # alu
                    result_ready[w] = cycle + 18  # SP pipeline depth
                    issue_ready[w] = cycle + 1

                pc[w] += 1
                issued += 1
                slots -= 1
                if pc[w] >= n_instr:
                    completion[w] = cycle
                    n_done += 1
            rr = (rr + 1) % n_warps
            cycle += 1

        return MicroResult(
            cycles=cycle, instructions_issued=issued, completion=completion
        )
