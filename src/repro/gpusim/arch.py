"""GPU architecture descriptions (the paper's Table 2, plus geometry).

The paper trains on an NVIDIA GTX580 (Fermi, CC 2.0) and predicts on a
Tesla K20m (Kepler, CC 3.5); Table 2 also lists the GTX480. Besides the
Table 2 machine metrics (warp schedulers, clock, SM count, cores/SM,
memory bandwidth, registers, L2 size), the simulator needs cache and
scheduling geometry, which is taken from the CUDA C Programming Guide
occupancy tables for the respective compute capabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CacheGeometry", "GPUArchitecture", "GTX480", "GTX580", "K20M", "TABLE2_METRICS"]


@dataclass(frozen=True)
class CacheGeometry:
    """Set-associative cache geometry."""

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError("cache size must be a multiple of line*associativity")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class GPUArchitecture:
    """Static description of a GPU for the performance simulator.

    The seven Table 2 metrics are exposed with the paper's names via
    :meth:`machine_metrics`; the remaining fields parameterize the
    occupancy, memory and timing models.
    """

    name: str
    family: str  # "fermi" | "kepler"
    compute_capability: tuple[int, int]

    # --- Table 2 metrics ---
    warp_schedulers: int        # wsched
    clock_ghz: float            # freq
    n_sms: int                  # smp
    cores_per_sm: int           # rco
    mem_bandwidth_gbs: float    # mbw
    max_registers_per_thread: int  # the paper's "registers" row
    l2_size_kb: int             # l2c

    # --- scheduling / occupancy geometry ---
    warp_size: int = 32
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 1024
    registers_per_sm: int = 32768
    register_alloc_granularity: int = 64   # registers, allocated per warp
    shared_mem_per_sm: int = 49152
    shared_mem_granularity: int = 128      # bytes
    shared_banks: int = 32
    dispatch_units_per_scheduler: int = 1
    #: load/store units per SM (Fermi GF110: 16 -> a warp shared
    #: access occupies the LSU pipe for 2 cycles; GK110: 32).
    lsu_units: int = 16

    # --- memory system ---
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(16 * 1024, 128, 4)
    )
    l1_caches_global_loads: bool = True   # Fermi yes; Kepler GK110 no (L2 only)
    global_mem_segment_bytes: int = 128   # coalescing segment at the caching level
    l2_line_bytes: int = 32
    dram_latency_cycles: float = 440.0
    l2_latency_cycles: float = 230.0
    shared_latency_cycles: float = 28.0

    # --- timing model knobs ---
    issue_cycles_per_instruction: float = 1.0
    departure_delay_coalesced: float = 4.0    # cycles between transactions
    kernel_launch_overhead_us: float = 5.0

    # --- energy model (for the Section 7 power-response extension) ---
    #: Dynamic energy per issued warp instruction (nJ); ~40nm/28nm-class.
    energy_per_instruction_nj: float = 6.0
    #: Dynamic energy per DRAM byte moved (nJ/B).
    energy_per_dram_byte_nj: float = 0.35
    #: Dynamic energy per 32B L2 transaction (nJ).
    energy_per_l2_transaction_nj: float = 2.0
    #: Dynamic energy per shared-memory transaction (nJ).
    energy_per_shared_transaction_nj: float = 0.8
    #: Constant (idle/leakage/fan) power draw while the kernel runs (W).
    static_power_w: float = 45.0
    #: Board thermal design power; reported averages are clipped to it.
    tdp_w: float = 244.0

    # -- derived ------------------------------------------------------------

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    @property
    def peak_gflops_sp(self) -> float:
        """Single-precision FMA peak (2 flops per core per cycle)."""
        return 2.0 * self.cores_per_sm * self.n_sms * self.clock_ghz

    @property
    def l2(self) -> CacheGeometry:
        return CacheGeometry(self.l2_size_kb * 1024, self.l2_line_bytes, 16)

    def bytes_per_cycle(self) -> float:
        """Device DRAM bandwidth expressed in bytes per core cycle."""
        return self.mem_bandwidth_gbs / self.clock_ghz

    def machine_metrics(self) -> dict[str, float]:
        """The Table 2 predictor vector injected for hardware scaling."""
        return {
            "wsched": float(self.warp_schedulers),
            "freq": self.clock_ghz,
            "smp": float(self.n_sms),
            "rco": float(self.cores_per_sm),
            "mbw": self.mem_bandwidth_gbs,
            "l1c": float(self.max_registers_per_thread),
            "l2c": float(self.l2_size_kb),
        }

    def with_overrides(self, **kwargs) -> "GPUArchitecture":
        """A modified copy — convenient for what-if architecture studies."""
        return replace(self, **kwargs)


# Table 2 of the paper lists GTX480 and K20m; the text trains on a GTX580
# (same Fermi GF110 family as the GTX480, one more SM and higher clock).

GTX480 = GPUArchitecture(
    name="GTX480",
    family="fermi",
    compute_capability=(2, 0),
    warp_schedulers=2,
    clock_ghz=1.40,
    n_sms=15,
    cores_per_sm=32,
    mem_bandwidth_gbs=177.4,
    max_registers_per_thread=63,
    l2_size_kb=768,
    energy_per_instruction_nj=7.0,   # GF100: leakier than the GF110 respin
    static_power_w=55.0,
    tdp_w=250.0,
)

GTX580 = GPUArchitecture(
    name="GTX580",
    family="fermi",
    compute_capability=(2, 0),
    warp_schedulers=2,
    clock_ghz=1.544,
    n_sms=16,
    cores_per_sm=32,
    mem_bandwidth_gbs=192.4,
    max_registers_per_thread=63,
    l2_size_kb=768,
)

K20M = GPUArchitecture(
    name="K20m",
    family="kepler",
    compute_capability=(3, 5),
    warp_schedulers=4,
    clock_ghz=0.71,
    n_sms=13,
    cores_per_sm=192,
    mem_bandwidth_gbs=208.0,
    max_registers_per_thread=255,
    l2_size_kb=1280,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    register_alloc_granularity=256,
    l1=CacheGeometry(16 * 1024, 128, 4),
    l1_caches_global_loads=False,      # GK110: global loads served by L2
    global_mem_segment_bytes=32,       # 32B L2 transactions
    dram_latency_cycles=301.0,
    l2_latency_cycles=175.0,
    shared_latency_cycles=31.0,
    dispatch_units_per_scheduler=2,
    lsu_units=32,
    departure_delay_coalesced=1.0,
    kernel_launch_overhead_us=4.0,
    # 28nm GK110 energy profile and board limits.
    energy_per_instruction_nj=3.5,
    energy_per_dram_byte_nj=0.30,
    energy_per_l2_transaction_nj=1.5,
    energy_per_shared_transaction_nj=0.6,
    static_power_w=38.0,
    tdp_w=225.0,
)

#: The exact Table 2 rows, for the Table 2 regeneration bench.
TABLE2_METRICS: dict[str, dict[str, float]] = {
    "GTX480": GTX480.machine_metrics(),
    "K20m": K20M.machine_metrics(),
}
