"""Run-to-run perturbation model.

Real GPU runs are not deterministic: warp scheduling order, DRAM
refresh/contention, cache state and the conflict interleaving all vary
between otherwise identical executions, which moves *both* the measured
time and the affected hardware counters. BlackForest's statistical
machinery feeds on exactly this covariance — the counter watching the
*binding* mechanism tracks the run's time residual, while unrelated
counters only carry their own jitter.

:class:`Perturbation` captures one run's draw of these mechanism
efficiencies; :meth:`Perturbation.draw` samples them from calibrated
distributions (magnitudes chosen to match the few-percent run-to-run
variance typical of wall-clock GPU measurements).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Perturbation"]


@dataclass(frozen=True)
class Perturbation:
    """Mechanism-level multipliers for one application run."""

    #: Scales the replays caused by each shared-memory bank conflict
    #: (conflict interleaving luck); applied to (degree - 1).
    conflict_factor: float = 1.0
    #: Scheduler efficiency in (0, 1]: fraction of resident warps
    #: effectively contributing to latency hiding this run.
    sched_efficiency: float = 1.0
    #: Usable fraction of peak DRAM bandwidth this run (refresh,
    #: row-buffer locality, contention).
    dram_efficiency: float = 1.0
    #: Scales cache hit fractions (cache state luck).
    cache_factor: float = 1.0
    #: Residual multiplicative measurement noise on the reported time.
    time_jitter: float = 1.0

    def __post_init__(self) -> None:
        for name in ("conflict_factor", "sched_efficiency", "dram_efficiency",
                     "cache_factor", "time_jitter"):
            v = getattr(self, name)
            if not v > 0:
                raise ValueError(f"{name} must be positive, got {v}")
        if self.sched_efficiency > 1.0:
            raise ValueError("sched_efficiency cannot exceed 1.0")
        if self.dram_efficiency > 1.0:
            raise ValueError("dram_efficiency cannot exceed 1.0")

    @staticmethod
    def draw(
        rng: np.random.Generator | int | None = None, scale: float = 1.0
    ) -> "Perturbation":
        """Sample one run's perturbation.

        ``scale`` multiplies all dispersion parameters (0 reproduces the
        deterministic :meth:`none` draw).
        """
        if scale < 0:
            raise ValueError("scale must be >= 0")
        if scale == 0:
            return Perturbation()
        rng = np.random.default_rng(rng)
        return Perturbation(
            conflict_factor=float(np.exp(rng.normal(0.0, 0.06 * scale))),
            sched_efficiency=float(
                np.clip(1.0 - np.abs(rng.normal(0.0, 0.05 * scale)), 0.6, 1.0)
            ),
            dram_efficiency=float(
                np.clip(0.95 * np.exp(rng.normal(0.0, 0.04 * scale)), 0.6, 1.0)
            ),
            cache_factor=float(np.exp(rng.normal(0.0, 0.08 * scale))),
            time_jitter=float(np.exp(rng.normal(0.0, 0.01 * scale))),
        )

    @staticmethod
    def none() -> "Perturbation":
        """The deterministic (noise-free) run."""
        return Perturbation()
