"""Roofline analysis over simulated profiles.

A complement to the statistical pipeline: the roofline model places a
kernel by its *operational intensity* (flops per DRAM byte) against the
architecture's compute and bandwidth ceilings, giving an immediate
visual answer to "is this kernel compute- or bandwidth-limited and how
far from the ceiling does it run?". BlackForest's counters contain
everything needed to compute it, so the roofline doubles as a sanity
check on the bottleneck patterns the forest detects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import GPUArchitecture
from .simulator import GPUSimulator, sum_raw

__all__ = ["RooflinePoint", "roofline_point", "attainable_gflops", "roofline_chart"]


@dataclass
class RooflinePoint:
    """One kernel's position under the roofline."""

    name: str
    operational_intensity: float   # flops / DRAM byte
    achieved_gflops: float
    attainable_gflops: float
    peak_gflops: float
    ridge_intensity: float         # where bandwidth meets compute

    @property
    def bound(self) -> str:
        """'bandwidth' left of the ridge, 'compute' right of it."""
        return (
            "bandwidth"
            if self.operational_intensity < self.ridge_intensity
            else "compute"
        )

    @property
    def ceiling_fraction(self) -> float:
        """Achieved fraction of the attainable ceiling at this intensity."""
        if self.attainable_gflops <= 0:
            return 0.0
        return self.achieved_gflops / self.attainable_gflops


def attainable_gflops(arch: GPUArchitecture, intensity: float) -> float:
    """min(peak compute, intensity x bandwidth) — the roofline itself."""
    if intensity < 0:
        raise ValueError("operational intensity must be >= 0")
    return float(min(arch.peak_gflops_sp, intensity * arch.mem_bandwidth_gbs))


def roofline_point(
    kernel, problem, arch: GPUArchitecture, name: str | None = None
) -> RooflinePoint:
    """Place one kernel/problem on the architecture's roofline.

    Flops are taken from the workload's FMA count (2 flops each) plus
    one flop per other arithmetic warp instruction; DRAM bytes from the
    simulated memory traffic.
    """
    sim = GPUSimulator(arch)
    workloads = kernel.workloads(problem, arch)
    profiles = [sim.launch(wl) for wl in workloads]
    total = sum_raw(profiles)

    flops = 0.0
    for wl in workloads:
        lanes = wl.avg_active_threads
        flops += wl.fma_instructions * 2.0 * lanes
        flops += (wl.arithmetic_instructions - wl.fma_instructions) * lanes
    dram_bytes = total["dram_read_bytes"] + total["dram_write_bytes"]
    time_s = total["time_s"]

    intensity = flops / dram_bytes if dram_bytes > 0 else np.inf
    achieved = flops / time_s / 1e9 if time_s > 0 else 0.0
    ridge = arch.peak_gflops_sp / arch.mem_bandwidth_gbs
    return RooflinePoint(
        name=name if name is not None else getattr(kernel, "name", "kernel"),
        operational_intensity=float(intensity),
        achieved_gflops=float(achieved),
        attainable_gflops=attainable_gflops(
            arch, min(intensity, 1e9)
        ),
        peak_gflops=arch.peak_gflops_sp,
        ridge_intensity=float(ridge),
    )


def roofline_chart(
    points: list[RooflinePoint], arch: GPUArchitecture, width: int = 64,
    height: int = 16,
) -> str:
    """ASCII log-log roofline with kernel markers."""
    if not points:
        raise ValueError("no points to chart")
    xs = [max(p.operational_intensity, 1e-3) for p in points]
    x_lo = min(min(xs) / 2, 0.1)
    x_hi = max(max(xs) * 2, arch.peak_gflops_sp / arch.mem_bandwidth_gbs * 4)
    y_hi = arch.peak_gflops_sp * 1.5
    y_lo = min(min(max(p.achieved_gflops, 1e-2) for p in points) / 2,
               x_lo * arch.mem_bandwidth_gbs)

    def col(x):
        return int((np.log10(x) - np.log10(x_lo))
                   / (np.log10(x_hi) - np.log10(x_lo)) * (width - 1))

    def row(y):
        return height - 1 - int(
            (np.log10(y) - np.log10(y_lo))
            / (np.log10(y_hi) - np.log10(y_lo)) * (height - 1)
        )

    grid = [[" "] * width for _ in range(height)]
    # the roof
    for c in range(width):
        x = 10 ** (np.log10(x_lo) + c / (width - 1)
                   * (np.log10(x_hi) - np.log10(x_lo)))
        y = attainable_gflops(arch, x)
        r = row(max(min(y, y_hi), y_lo))
        if 0 <= r < height:
            grid[r][c] = "-" if y >= arch.peak_gflops_sp else "/"
    # the kernels
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for i, p in enumerate(points):
        c = min(max(col(max(p.operational_intensity, x_lo)), 0), width - 1)
        r = min(max(row(max(p.achieved_gflops, y_lo)), 0), height - 1)
        grid[r][c] = markers[i % len(markers)]

    lines = [f"Roofline: {arch.name} "
             f"(peak {arch.peak_gflops_sp:.0f} GF/s, "
             f"{arch.mem_bandwidth_gbs:.0f} GB/s)"]
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append("  intensity (flops/byte, log) ->")
    for i, p in enumerate(points):
        lines.append(
            f"  {markers[i % len(markers)]}: {p.name}  "
            f"I={p.operational_intensity:.2f}  "
            f"{p.achieved_gflops:.1f}/{p.attainable_gflops:.1f} GF/s "
            f"({p.bound}-bound, {100 * p.ceiling_fraction:.0f}% of ceiling)"
        )
    return "\n".join(lines)
