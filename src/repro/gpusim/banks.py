"""Shared-memory bank conflict model.

Shared memory on Fermi/Kepler is organized in 32 banks of 4-byte words;
a warp access where k lanes fall into the same bank serializes into k
transactions — k-1 *replays* of the instruction. This is the mechanism
the reduce1 use case exposes (paper Section 5.2): strided shared-memory
indexing produces high-degree conflicts whose replays dominate the
kernel's execution time.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["conflict_degree_for_stride", "conflict_degree_from_lanes", "replay_count"]


def conflict_degree_for_stride(
    stride_words: int, active_lanes: int = 32, banks: int = 32
) -> float:
    """Conflict degree of a strided warp access to shared memory.

    Lanes ``i`` access word index ``i * stride_words``; the bank of a
    word is ``index % banks``. The degree is the maximum number of
    active lanes hitting the same bank (hardware serializes on the
    worst bank). A stride of 0 is a broadcast (degree 1 — hardware
    broadcasts a single word).
    """
    if active_lanes < 1 or active_lanes > 32:
        raise ValueError("active_lanes must be in [1, 32]")
    if stride_words < 0:
        raise ValueError("stride_words must be >= 0")
    if stride_words == 0:
        return 1.0
    distinct_banks = banks // math.gcd(stride_words, banks)
    # Lanes cycle through `distinct_banks` banks; worst bank receives
    # ceil(active / distinct_banks) lanes.
    return float(math.ceil(active_lanes / distinct_banks))


def conflict_degree_from_lanes(word_indices: np.ndarray, banks: int = 32) -> float:
    """Conflict degree of an arbitrary lane->word mapping.

    ``word_indices``: 4-byte word index accessed per active lane.
    Lanes accessing the *same word* are broadcast (no conflict); lanes
    accessing different words in the same bank serialize.
    """
    word_indices = np.asarray(word_indices, dtype=np.int64).ravel()
    if word_indices.size == 0:
        return 1.0
    degree = 1
    bank_of = word_indices % banks
    for bank in np.unique(bank_of):
        words = np.unique(word_indices[bank_of == bank])
        degree = max(degree, int(words.size))
    return float(degree)


def replay_count(requests: float, conflict_degree: float) -> float:
    """Replayed warp instructions caused by bank conflicts."""
    if conflict_degree < 1.0:
        raise ValueError("conflict_degree must be >= 1.0")
    return requests * (conflict_degree - 1.0)
