"""CUDA occupancy calculator.

Computes, per streaming multiprocessor, the number of concurrently
resident thread blocks as limited by (a) the warp-slot budget, (b) the
register file, (c) shared memory, and (d) the hardware block limit —
the same logic as NVIDIA's occupancy calculator spreadsheet. Occupancy
("ratio of active warps per active cycle to the maximum number of warps
per SM", Table 1) is the central parallelism metric of the paper's
Section 3.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .arch import GPUArchitecture

__all__ = ["OccupancyResult", "occupancy"]


def _ceil_to(value: int, granularity: int) -> int:
    if value == 0:
        return 0
    return ((value + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy limits for a kernel launch configuration."""

    warps_per_block: int
    active_blocks_per_sm: int
    active_warps_per_sm: int
    theoretical_occupancy: float
    limited_by: str  # "warps" | "registers" | "shared_memory" | "blocks"
    limit_warps: int
    limit_registers: int
    limit_shared_memory: int
    limit_blocks: int


def occupancy(
    arch: GPUArchitecture,
    threads_per_block: int,
    regs_per_thread: int,
    shared_mem_per_block: int,
) -> OccupancyResult:
    """Theoretical occupancy of a launch configuration on ``arch``.

    Raises ValueError when the configuration cannot run at all (zero
    resident blocks) — e.g. a block needing more shared memory than an
    SM has.
    """
    if threads_per_block < 1 or threads_per_block > arch.max_threads_per_block:
        raise ValueError(
            f"threads_per_block must be in [1, {arch.max_threads_per_block}]"
        )
    if regs_per_thread < 0 or shared_mem_per_block < 0:
        raise ValueError("resource usage must be non-negative")
    if regs_per_thread > arch.max_registers_per_thread:
        raise ValueError(
            f"{regs_per_thread} registers/thread exceeds the architecture "
            f"limit of {arch.max_registers_per_thread}"
        )

    warps_per_block = math.ceil(threads_per_block / arch.warp_size)

    limit_warps = arch.max_warps_per_sm // warps_per_block

    # Registers are allocated per warp at a fixed granularity.
    regs_per_warp = _ceil_to(regs_per_thread * arch.warp_size,
                             arch.register_alloc_granularity)
    if regs_per_warp == 0:
        limit_regs = arch.max_blocks_per_sm
    else:
        regs_per_block = regs_per_warp * warps_per_block
        limit_regs = arch.registers_per_sm // regs_per_block

    smem_per_block = _ceil_to(shared_mem_per_block, arch.shared_mem_granularity)
    if smem_per_block == 0:
        limit_smem = arch.max_blocks_per_sm
    else:
        limit_smem = arch.shared_mem_per_sm // smem_per_block

    limit_blocks = arch.max_blocks_per_sm

    limits = {
        "warps": limit_warps,
        "registers": limit_regs,
        "shared_memory": limit_smem,
        "blocks": limit_blocks,
    }
    limiting = min(limits, key=limits.get)
    active_blocks = limits[limiting]
    if active_blocks < 1:
        raise ValueError(
            f"launch configuration does not fit on an SM (limited by {limiting})"
        )

    active_warps = active_blocks * warps_per_block
    return OccupancyResult(
        warps_per_block=warps_per_block,
        active_blocks_per_sm=active_blocks,
        active_warps_per_sm=active_warps,
        theoretical_occupancy=active_warps / arch.max_warps_per_sm,
        limited_by=limiting,
        limit_warps=limit_warps,
        limit_registers=limit_regs,
        limit_shared_memory=limit_smem,
        limit_blocks=limit_blocks,
    )
