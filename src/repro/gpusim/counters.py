"""Hardware performance counter / metric catalogue.

Defines the working set of nvprof events and metrics this toolchain
collects — Table 1 of the paper plus the additional counters its use
cases reference (l2/dram transactions, efficiencies, utilizations).

Counter availability differs per architecture family, which is a core
difficulty for the paper's hardware scaling (Section 7): Fermi exposes
``l1_shared_bank_conflict`` while Kepler instead has
``shared_load_replay`` / ``shared_store_replay``; Kepler does not cache
global loads in L1, so the Fermi L1 hit/miss events are absent there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = [
    "CounterSpec",
    "CATALOGUE",
    "TABLE1_COUNTERS",
    "FAMILIES",
    "UNIT_VOCABULARY",
    "RESPONSE_PROXY_COUNTERS",
    "EXCLUSIVE_FAMILY_COUNTERS",
    "REPLAY_COUNTER_PAIRING",
    "METRIC_DEPENDENCIES",
    "available_counters",
    "predictor_counters",
    "counters_for",
    "CounterSet",
]

_BOTH = ("fermi", "kepler")
_FERMI = ("fermi",)
_KEPLER = ("kepler",)
_CPU = ("cpu",)

#: Architecture families counters may be tagged with.
FAMILIES = ("fermi", "kepler", "cpu")

#: Closed vocabulary of counter units; events are always raw counts,
#: metrics pick from the rest (checked by lint rule BF003).
UNIT_VOCABULARY = frozenset(
    {"count", "ratio", "percent", "GB/s", "inst/cycle", "level"}
)

#: Counters that are direct proxies of the response variable (elapsed
#: cycles / wall time). These must carry ``predictor=False`` — feeding
#: them to the forest would let it "predict" time from time (checked by
#: lint rule BF005).
RESPONSE_PROXY_COUNTERS = frozenset(
    {"active_cycles", "active_warps", "sm_efficiency", "cpu_cycles"}
)

#: Counters that exist on exactly one GPU family (paper Section 7: the
#: hardware-scaling stage must intersect these away). A Kepler run
#: reporting ``l1_global_load_hit`` is the canonical corrupted-vector
#: symptom the sanitizer exists to catch.
EXCLUSIVE_FAMILY_COUNTERS: dict[str, str] = {
    "l1_global_load_hit": "fermi",
    "l1_global_load_miss": "fermi",
    "l1_shared_bank_conflict": "fermi",
    "shared_load_replay": "kepler",
    "shared_store_replay": "kepler",
}

#: The bank-conflict replay counter renames across families: Fermi's
#: single conflict counter corresponds to Kepler's load/store replay
#: pair. If either side of the pairing is catalogued, the other side
#: must be too, with the mirrored family tag (lint rule BF004).
REPLAY_COUNTER_PAIRING = {
    "fermi": ("l1_shared_bank_conflict",),
    "kepler": ("shared_load_replay", "shared_store_replay"),
}

#: Which events each derived metric is computed from. Each value is a
#: tuple of *any-of* groups: the metric is well-defined on a family iff
#: every group has at least one member available there (so
#: ``shared_replay_overhead`` resolves to the bank-conflict counter on
#: Fermi and to the replay pair on Kepler). This is the "validated,
#: architecture-consistent feature set" contract: lint rule BF006
#: verifies every metric against it, and it documents the provenance of
#: each column the statistical pipeline consumes.
METRIC_DEPENDENCIES: dict[str, tuple[tuple[str, ...], ...]] = {
    "ipc": (("inst_executed",), ("active_cycles",)),
    "achieved_occupancy": (("active_warps",), ("active_cycles",)),
    "issue_slot_utilization": (("inst_issued",), ("active_cycles",)),
    "inst_replay_overhead": (("inst_issued",), ("inst_executed",)),
    "shared_replay_overhead": (
        ("l1_shared_bank_conflict", "shared_load_replay", "shared_store_replay"),
        ("inst_executed",),
    ),
    "global_replay_overhead": (
        ("gld_request", "gst_request"),
        ("inst_executed",),
    ),
    "warp_execution_efficiency": (("inst_executed",),),
    "gld_requested_throughput": (("gld_request",),),
    "gst_requested_throughput": (("gst_request",),),
    "gld_throughput": (("gld_request",),),
    "gst_throughput": (("global_store_transaction",),),
    "gld_efficiency": (("gld_request",),),
    "gst_efficiency": (("gst_request",), ("global_store_transaction",)),
    "l2_read_throughput": (("l2_read_transactions",),),
    "l2_write_throughput": (("l2_write_transactions",),),
    "dram_read_throughput": (("l2_read_transactions",),),
    "dram_write_throughput": (("l2_write_transactions",),),
    "ldst_fu_utilization": (
        ("gld_request",), ("gst_request",), ("shared_load",), ("shared_store",),
    ),
    "shared_efficiency": (("shared_load",), ("shared_store",)),
    "sm_efficiency": (("active_cycles",),),
    "cpu_ipc": (("instructions",), ("cpu_cycles",)),
    "cpu_llc_miss_rate": (("cache_misses",), ("cache_references",)),
    "cpu_mem_bandwidth": (("cache_misses",),),
    "cpu_vectorization_ratio": (("simd_instructions",), ("instructions",)),
    "cpu_parallel_efficiency": (("instructions",), ("cpu_cycles",)),
}


@dataclass(frozen=True)
class CounterSpec:
    """One profiler event or derived metric."""

    name: str
    meaning: str
    kind: str                  # "event" | "metric"
    families: tuple[str, ...]  # architecture families exposing it
    unit: str = "count"
    #: Usable as a model predictor. False for counters that are direct
    #: proxies of the response (elapsed cycles), which would let the
    #: forest "predict" time from time.
    predictor: bool = True

    def available_on(self, family: str) -> bool:
        return family in self.families


_SPECS: list[CounterSpec] = [
    # ---- events (raw counts) ----
    CounterSpec("shared_load", "number of executed shared load instructions, increments per warp on a multiprocessor", "event", _BOTH),
    CounterSpec("shared_store", "number of executed shared store instructions, increments per warp on a multiprocessor", "event", _BOTH),
    CounterSpec("gld_request", "number of executed global load instructions, increments per warp on a multiprocessor", "event", _BOTH),
    CounterSpec("gst_request", "similar to gld_request for store instructions", "event", _BOTH),
    CounterSpec("global_store_transaction", "number of global store transactions; increments per transaction which can be 32,64,96 or 128 bytes", "event", _BOTH),
    CounterSpec("l1_global_load_hit", "number of cache lines that hit in L1 for global memory load accesses", "event", _FERMI),
    CounterSpec("l1_global_load_miss", "number of cache lines that miss in L1 for global memory load accesses", "event", _FERMI),
    CounterSpec("l1_shared_bank_conflict", "number of shared memory bank conflicts", "event", _FERMI),
    CounterSpec("shared_load_replay", "replays of shared load instructions due to bank conflicts", "event", _KEPLER),
    CounterSpec("shared_store_replay", "replays of shared store instructions due to bank conflicts", "event", _KEPLER),
    CounterSpec("l2_read_transactions", "memory read transactions at L2 cache", "event", _BOTH),
    CounterSpec("l2_write_transactions", "memory write transactions at L2 cache", "event", _BOTH),
    CounterSpec("inst_issued", "instructions issued, including replays", "event", _BOTH),
    CounterSpec("inst_executed", "instructions executed, not including replays", "event", _BOTH),
    CounterSpec("branch", "number of branch instructions executed per warp on a multiprocessor", "event", _BOTH),
    CounterSpec("divergent_branch", "number of divergent branches within a warp", "event", _BOTH),
    CounterSpec("active_cycles", "cycles an SM has at least one active warp", "event", _BOTH, predictor=False),
    CounterSpec("active_warps", "accumulated active warps per cycle", "event", _BOTH, predictor=False),
    # ---- derived metrics ----
    CounterSpec("ipc", "number of instructions executed per cycle", "metric", _BOTH, "inst/cycle"),
    CounterSpec("achieved_occupancy", "ratio of average active warps per active cycle to the maximum number of warps per SM", "metric", _BOTH, "ratio"),
    CounterSpec("issue_slot_utilization", "percentage of issue slots that issued at least one instruction, averaged across all cycles", "metric", _BOTH, "percent"),
    CounterSpec("inst_replay_overhead", "average number of replays for each instruction executed", "metric", _BOTH, "ratio"),
    CounterSpec("shared_replay_overhead", "average number of replays due to shared memory conflicts for each instruction executed", "metric", _BOTH, "ratio"),
    CounterSpec("global_replay_overhead", "average number of replays due to global memory accesses for each instruction executed", "metric", _BOTH, "ratio"),
    CounterSpec("warp_execution_efficiency", "ratio of the average active threads per warp to the maximum number of threads per warp supported by the multiprocessor", "metric", _BOTH, "percent"),
    CounterSpec("gld_requested_throughput", "requested global memory load throughput", "metric", _BOTH, "GB/s"),
    CounterSpec("gst_requested_throughput", "requested global memory store throughput", "metric", _BOTH, "GB/s"),
    CounterSpec("gld_throughput", "global memory load throughput", "metric", _BOTH, "GB/s"),
    CounterSpec("gst_throughput", "global memory store throughput", "metric", _BOTH, "GB/s"),
    CounterSpec("gld_efficiency", "ratio of requested to actual global load throughput", "metric", _BOTH, "percent"),
    CounterSpec("gst_efficiency", "ratio of requested to actual global store throughput", "metric", _BOTH, "percent"),
    CounterSpec("l2_read_throughput", "memory read throughput at L2 cache", "metric", _BOTH, "GB/s"),
    CounterSpec("l2_write_throughput", "memory write throughput at L2 cache", "metric", _BOTH, "GB/s"),
    CounterSpec("dram_read_throughput", "device memory read throughput", "metric", _BOTH, "GB/s"),
    CounterSpec("dram_write_throughput", "device memory write throughput", "metric", _BOTH, "GB/s"),
    CounterSpec("ldst_fu_utilization", "utilization level of the load/store function units on a scale of 0 to 10", "metric", _BOTH, "level"),
    CounterSpec("shared_efficiency", "ratio of requested to required shared memory throughput", "metric", _BOTH, "percent"),
    CounterSpec("sm_efficiency", "percentage of time at least one warp is active on an SM", "metric", _BOTH, "percent", predictor=False),
    # ---- CPU (perf-style) events and metrics, for the Section 7 CPU
    # extension; names follow `perf stat` conventions ----
    CounterSpec("instructions", "retired instructions", "event", _CPU),
    CounterSpec("cpu_cycles", "core clock cycles elapsed", "event", _CPU, predictor=False),
    CounterSpec("cache_references", "last-level cache accesses", "event", _CPU),
    CounterSpec("cache_misses", "last-level cache misses", "event", _CPU),
    CounterSpec("l1_dcache_loads", "L1 data cache load accesses", "event", _CPU),
    CounterSpec("l1_dcache_load_misses", "L1 data cache load misses", "event", _CPU),
    CounterSpec("branches", "retired branch instructions", "event", _CPU),
    CounterSpec("branch_misses", "mispredicted branches", "event", _CPU),
    CounterSpec("simd_instructions", "retired packed SIMD instructions", "event", _CPU),
    CounterSpec("cpu_ipc", "retired instructions per cycle per core", "metric", _CPU, "inst/cycle"),
    CounterSpec("cpu_llc_miss_rate", "LLC misses per reference", "metric", _CPU, "ratio"),
    CounterSpec("cpu_mem_bandwidth", "sustained memory bandwidth", "metric", _CPU, "GB/s"),
    CounterSpec("cpu_vectorization_ratio", "fraction of retired instructions that are packed SIMD", "metric", _CPU, "ratio"),
    CounterSpec("cpu_parallel_efficiency", "speedup achieved over serial divided by core count", "metric", _CPU, "ratio"),
]

CATALOGUE: dict[str, CounterSpec] = {spec.name: spec for spec in _SPECS}

#: The sample shown in the paper's Table 1, in its row order.
TABLE1_COUNTERS: list[str] = [
    "shared_replay_overhead",
    "shared_load",
    "shared_store",
    "inst_replay_overhead",
    "l1_global_load_hit",
    "l1_global_load_miss",
    "gld_request",
    "gst_request",
    "global_store_transaction",
    "gld_requested_throughput",
    "achieved_occupancy",
    "l2_read_throughput",
    "l2_write_transactions",
    "ipc",
    "issue_slot_utilization",
    "warp_execution_efficiency",
]


def available_counters(family: str, kind: str | None = None) -> list[str]:
    """Counter names an architecture family exposes, in catalogue order."""
    return [
        s.name
        for s in _SPECS
        if s.available_on(family) and (kind is None or s.kind == kind)
    ]


def predictor_counters(family: str) -> list[str]:
    """Counters admissible as model predictors on a family (excludes
    direct response proxies such as elapsed cycles)."""
    return [s.name for s in _SPECS if s.available_on(family) and s.predictor]


def counters_for(arch) -> list[str]:
    """Counters available on a :class:`~repro.gpusim.arch.GPUArchitecture`."""
    return available_counters(arch.family)


class CounterSet(Mapping[str, float]):
    """An immutable named counter vector validated against the catalogue."""

    def __init__(self, family: str, values: Mapping[str, float]) -> None:
        if family not in FAMILIES:
            raise ValueError(f"unknown architecture family {family!r}")
        for name in values:
            spec = CATALOGUE.get(name)
            if spec is None:
                raise KeyError(f"unknown counter {name!r}")
            if not spec.available_on(family):
                raise KeyError(f"counter {name!r} not available on {family}")
        self.family = family
        self._values = dict(values)

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"CounterSet({self.family}, {len(self)} counters)"

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)
