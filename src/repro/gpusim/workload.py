"""Kernel workload intermediate representation.

A :class:`KernelWorkload` is what a kernel model (``repro.kernels``)
hands to the simulator for **one kernel launch**: launch geometry,
per-SM resource usage, device-wide dynamic warp-level instruction
counts, and the memory access patterns needed to derive transactions,
cache behaviour and replays.

Counts are *device-wide totals at warp granularity*, matching how the
profiler events of Table 1 increment ("increments per warp on a
multiprocessor"): e.g. ``gld_request`` is the number of executed
warp-level global-load instructions summed over all warps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["GlobalAccessPattern", "SharedAccessPattern", "KernelWorkload"]


@dataclass
class GlobalAccessPattern:
    """A class of global-memory warp accesses with a common shape.

    Parameters
    ----------
    kind:
        ``"load"`` or ``"store"``.
    requests:
        Device-wide count of warp-level memory instructions of this class.
    word_bytes:
        Bytes accessed per thread (4 for float/int, 8 for double).
    stride_words:
        Address distance between consecutive lanes, in words; 1 is fully
        coalesced, 0 is a broadcast, larger strides scatter the request
        over more memory segments.
    active_lanes:
        Threads per warp participating in the access (<=32); partial
        warps and divergent accesses touch fewer lanes.
    unique_bytes:
        Footprint: distinct bytes this access class touches over the
        whole launch. Drives the analytic cache-hit estimate. None means
        "streaming" (every byte touched once per request ensemble).
    l1_hit_fraction, l2_hit_fraction:
        Optional overrides when the kernel model computes hit rates
        itself (e.g. from a sampled address trace via
        :class:`repro.gpusim.memory.CacheSim`).
    addresses:
        Optional sampled per-request lane addresses, shape
        ``(n_sample_requests, 32)`` with -1 marking inactive lanes. When
        provided, the simulator derives transactions-per-request and L1
        hit rates from this trace instead of the analytic stride model.
    """

    kind: str
    requests: int
    word_bytes: int = 4
    stride_words: int = 1
    active_lanes: int = 32
    unique_bytes: int | None = None
    l1_hit_fraction: float | None = None
    l2_hit_fraction: float | None = None
    addresses: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store"):
            raise ValueError(f"kind must be 'load' or 'store', got {self.kind!r}")
        if self.requests < 0:
            raise ValueError("requests must be non-negative")
        if not 1 <= self.active_lanes <= 32:
            raise ValueError("active_lanes must be in [1, 32]")
        if self.word_bytes not in (1, 2, 4, 8, 16):
            raise ValueError("word_bytes must be a power of two <= 16")
        if self.stride_words < 0:
            raise ValueError("stride_words must be >= 0")
        for frac in (self.l1_hit_fraction, self.l2_hit_fraction):
            if frac is not None and not 0.0 <= frac <= 1.0:
                raise ValueError("hit fractions must be in [0, 1]")
        if self.unique_bytes is not None and self.unique_bytes < 0:
            raise ValueError("unique_bytes must be non-negative")
        if self.addresses is not None:
            trace = np.asarray(self.addresses)
            if trace.ndim != 2 or trace.shape[1] != 32:
                raise ValueError(
                    f"addresses must have shape (n_requests, 32), "
                    f"got {trace.shape}"
                )
            if trace.size and trace.min() < -1:
                raise ValueError(
                    "addresses must be >= -1 (-1 marks inactive lanes)"
                )

    @property
    def requested_bytes(self) -> int:
        """Bytes the threads asked for (the 'requested throughput' base)."""
        return self.requests * self.active_lanes * self.word_bytes


@dataclass
class SharedAccessPattern:
    """A class of shared-memory warp accesses.

    ``conflict_degree`` is the average number of simultaneous accesses
    falling in the same bank (1.0 = conflict-free). A degree-k conflict
    serializes into k transactions, i.e. k-1 *replays* of the
    instruction — the mechanism behind ``shared_replay_overhead`` and
    Fermi's ``l1_shared_bank_conflict`` counter (paper Section 3.2).
    """

    kind: str
    requests: int
    word_bytes: int = 4
    conflict_degree: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store"):
            raise ValueError(f"kind must be 'load' or 'store', got {self.kind!r}")
        if self.requests < 0:
            raise ValueError("requests must be non-negative")
        if self.word_bytes not in (1, 2, 4, 8, 16):
            raise ValueError("word_bytes must be a power of two <= 16")
        if not math.isfinite(self.conflict_degree) or self.conflict_degree < 1.0:
            raise ValueError("conflict_degree must be finite and >= 1.0")

    @property
    def replays(self) -> float:
        """Device-wide replayed instruction count caused by conflicts."""
        return self.requests * (self.conflict_degree - 1.0)


@dataclass
class KernelWorkload:
    """One kernel launch, as seen by the performance simulator."""

    name: str
    grid_blocks: int
    threads_per_block: int
    regs_per_thread: int = 16
    shared_mem_per_block: int = 0

    #: Device-wide warp-level arithmetic instructions (FP + int + address math).
    arithmetic_instructions: int = 0
    #: Of which single-precision FMA-class (counts 2 flops each).
    fma_instructions: int = 0
    #: Control-flow instructions and how many of them diverged.
    branches: int = 0
    divergent_branches: int = 0
    #: Synchronization / misc instructions (bar.sync etc.).
    other_instructions: int = 0
    #: Average live threads per executed warp instruction (<= 32).
    avg_active_threads: float = 32.0

    global_accesses: list[GlobalAccessPattern] = field(default_factory=list)
    shared_accesses: list[SharedAccessPattern] = field(default_factory=list)

    #: Independent global loads a warp keeps in flight (memory-level
    #: parallelism within one warp); e.g. the four independent tile
    #: loads of a matrix-multiply phase. Divides exposed load latency.
    memory_ilp: float = 1.0
    #: Per-warp dependent-latency chain in cycles (e.g. a DP tile's
    #: step-by-step shared-memory recurrence); charged on the serial
    #: path that binds at low occupancy.
    critical_path_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise ValueError("grid_blocks must be >= 1")
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")
        if self.regs_per_thread < 0:
            raise ValueError("regs_per_thread must be non-negative")
        if self.shared_mem_per_block < 0:
            raise ValueError("shared_mem_per_block must be non-negative")
        if not 0.0 < self.avg_active_threads <= 32.0:
            raise ValueError("avg_active_threads must be in (0, 32]")
        if self.memory_ilp < 1.0:
            raise ValueError("memory_ilp must be >= 1.0")
        if self.critical_path_cycles < 0.0:
            raise ValueError("critical_path_cycles must be >= 0")
        for count in (
            self.arithmetic_instructions,
            self.fma_instructions,
            self.branches,
            self.divergent_branches,
            self.other_instructions,
        ):
            if count < 0:
                raise ValueError("instruction counts must be non-negative")
        if self.divergent_branches > self.branches:
            raise ValueError("divergent_branches cannot exceed branches")
        if self.fma_instructions > self.arithmetic_instructions:
            raise ValueError(
                "fma_instructions cannot exceed arithmetic_instructions "
                "(FMAs are a subset of the arithmetic mix)"
            )

    # -- derived -------------------------------------------------------------

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block / 32)

    @property
    def total_warps(self) -> int:
        return self.grid_blocks * self.warps_per_block

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block

    @property
    def ldst_instructions(self) -> int:
        """All memory warp instructions (global + shared, loads + stores)."""
        return int(
            sum(a.requests for a in self.global_accesses)
            + sum(s.requests for s in self.shared_accesses)
        )

    @property
    def executed_instructions(self) -> int:
        """``inst_executed``: warp instructions, replays *not* included."""
        return int(
            self.arithmetic_instructions
            + self.branches
            + self.other_instructions
            + self.ldst_instructions
        )

    def loads(self, space: str) -> list:
        acc = self.global_accesses if space == "global" else self.shared_accesses
        return [a for a in acc if a.kind == "load"]

    def stores(self, space: str) -> list:
        acc = self.global_accesses if space == "global" else self.shared_accesses
        return [a for a in acc if a.kind == "store"]
