"""Analytical kernel timing model (roofline-with-latency, Hong–Kim style).

Execution time per launch is derived from four lower bounds evaluated
per *wave* of resident thread blocks on the busiest SM:

* **issue/compute bound** — issued warp instructions (replays included)
  divided by the SM's effective issue rate. Bank-conflict and
  uncoalesced-access replays inflate this bound, which is how the
  reduce1 bottleneck (paper Section 5.2) costs time.
* **memory latency bound** — per-warp memory stall cycles serialized
  over the achievable memory warp parallelism (MWP, Hong & Kim
  ISCA'09): ``MWP = min(N, latency / departure_delay)`` where the
  departure delay grows with the transactions each request splits into.
  Low occupancy (small N) exposes latency — the Needleman–Wunsch
  situation (paper Section 6.1.2).
* **bandwidth bound** — DRAM bytes moved divided by per-SM bandwidth;
  binding for streaming kernels such as the optimized reduce6.
* **single-warp critical path** — a lone warp's serial compute+memory
  time; dominates degenerate tiny launches.

The bound that binds *is* the bottleneck, so the counters feeding it
correlate with time — exactly the structure random-forest variable
importance is supposed to recover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .arch import GPUArchitecture
from .memory import MemoryAccessResult
from .occupancy import OccupancyResult

__all__ = ["LaunchTiming", "TimingModel"]


@dataclass
class LaunchTiming:
    """Cycle/time breakdown of one simulated launch."""

    cycles: float                # busiest-SM active cycles
    time_s: float                # wall time including launch overhead
    compute_bound_cycles: float
    latency_bound_cycles: float
    bandwidth_bound_cycles: float
    serial_warp_cycles: float
    waves: int
    avg_resident_warps: float    # cycle-weighted warps resident on the busiest SM
    n_active_sms: int
    binding: str                 # which bound won: compute|latency|bandwidth|serial

    @property
    def bottleneck(self) -> str:
        return self.binding


class TimingModel:
    """Evaluates the bounds for a workload on an architecture."""

    def __init__(self, arch: GPUArchitecture) -> None:
        self.arch = arch
        # Warp instructions the SM can issue per cycle: limited by the
        # scheduler/dispatch configuration and by the ALU width.
        self.issue_rate = float(
            min(
                arch.warp_schedulers * arch.dispatch_units_per_scheduler,
                max(arch.cores_per_sm / arch.warp_size, 1.0),
            )
        )

    # -- helpers -----------------------------------------------------------

    def load_request_latency(self, m: MemoryAccessResult) -> float:
        """Average stall latency of one warp *load request*.

        A request stalls for the latency of the level that serves it
        (the per-transaction split only affects pipe occupancy, which is
        charged separately as departure delay): L1-hit latency with the
        L1 hit fraction, else L2 or DRAM latency with the L2 hit
        fraction of the L1-miss traffic.
        """
        arch = self.arch
        if m.transactions <= 0:
            return 0.0
        l1_frac = m.l1_hits / m.transactions if m.transactions > 0 else 0.0
        h2 = m.l2_hits / m.l2_transactions if m.l2_transactions > 0 else 0.0
        miss_lat = h2 * arch.l2_latency_cycles + (1.0 - h2) * arch.dram_latency_cycles
        return l1_frac * arch.shared_latency_cycles + (1.0 - l1_frac) * miss_lat

    def memory_stall_cycles(self, mem: list[MemoryAccessResult]) -> float:
        """Device-wide warp stall cycles attributable to global memory.

        Loads: full service latency per request plus departure-delay
        occupancy for every extra transaction an uncoalesced request
        splits into. Stores: fire-and-forget — they only occupy the
        memory pipe (departure delay per transaction), they do not stall
        the issuing warp.
        """
        arch = self.arch
        total = 0.0
        for m in mem:
            if m.kind == "load":
                total += m.requests * self.load_request_latency(m)
                total += max(m.transactions - m.requests, 0.0) * arch.departure_delay_coalesced
            else:
                total += m.transactions * arch.departure_delay_coalesced
        return total

    def mean_memory_latency(self, mem: list[MemoryAccessResult]) -> float:
        """Request-weighted mean load latency (the MWP numerator)."""
        loads = [m for m in mem if m.kind == "load" and m.requests > 0]
        requests = sum(m.requests for m in loads)
        if requests <= 0:
            return self.arch.dram_latency_cycles
        return sum(m.requests * self.load_request_latency(m) for m in loads) / requests

    def departure_delay(self, mem: list[MemoryAccessResult]) -> float:
        """Cycles between consecutive memory requests leaving a warp,
        inflated by the average transactions-per-request (uncoalesced
        requests occupy the load/store unit longer)."""
        requests = sum(m.requests for m in mem)
        transactions = sum(m.transactions for m in mem)
        tpr = transactions / requests if requests > 0 else 1.0
        return self.arch.departure_delay_coalesced * max(tpr, 1.0)

    # -- main entry ----------------------------------------------------------

    def evaluate(
        self,
        grid_blocks: int,
        warps_per_block: int,
        occ: OccupancyResult,
        issued_per_warp: float,
        mem: list[MemoryAccessResult],
        total_warps: int,
        dram_bytes: float,
        shared_transactions: float = 0.0,
        memory_ilp: float = 1.0,
        critical_path_cycles: float = 0.0,
        sched_efficiency: float = 1.0,
        dram_efficiency: float = 1.0,
    ) -> LaunchTiming:
        """Evaluate the bounds.

        ``memory_ilp`` is the independent loads one warp keeps in flight
        (divides its exposed latency); ``critical_path_cycles`` is the
        per-warp dependent chain charged on the serial path.
        ``sched_efficiency`` discounts warp issue promptness and
        ``dram_efficiency`` discounts usable DRAM bandwidth (per-run
        perturbations, <= 1).
        """
        arch = self.arch
        n_active_sms = min(grid_blocks, arch.n_sms)
        busiest_blocks = math.ceil(grid_blocks / arch.n_sms)
        waves = math.ceil(busiest_blocks / occ.active_blocks_per_sm)

        # Per-warp cost components (device-wide averages).
        comp_cycles_warp = issued_per_warp * arch.issue_cycles_per_instruction
        mem_stall_total = self.memory_stall_cycles(mem)
        mem_cycles_warp = mem_stall_total / total_warps if total_warps else 0.0

        # Shared-memory traffic is throughput-limited by the LSU pipe:
        # a warp access occupies it for warp_size / lsu_units cycles
        # (2 on Fermi GF110, 1 on GK110); conflicts replay the access.
        lsu_cycles_per_access = arch.warp_size / arch.lsu_units
        lsu_cycles_warp = (
            shared_transactions * lsu_cycles_per_access / total_warps
            if total_warps
            else 0.0
        )

        mem_lat = self.mean_memory_latency(mem)
        departure = self.departure_delay(mem)

        bytes_per_cycle_sm = arch.bytes_per_cycle() * dram_efficiency / arch.n_sms
        dram_bytes_per_block = dram_bytes / grid_blocks if grid_blocks else 0.0

        total_cycles = 0.0
        warp_cycles_weighted = 0.0
        bound_totals = {"compute": 0.0, "latency": 0.0, "bandwidth": 0.0, "serial": 0.0}

        remaining_blocks = busiest_blocks
        for _ in range(waves):
            wave_blocks = min(occ.active_blocks_per_sm, remaining_blocks)
            remaining_blocks -= wave_blocks
            n_warps = wave_blocks * warps_per_block

            n_warps_eff = n_warps * sched_efficiency
            mwp = max(1.0, min(float(n_warps), mem_lat / departure))
            # Scheduler inefficiency (idle issue slots while warps are
            # ready) stretches every issue- or latency-dominated path:
            # the compute/LSU bounds, the overlapped latency bound and
            # the single-warp critical path all divide by it; the DRAM
            # bandwidth bound does not (a saturated memory bus does not
            # care how promptly warps issue).
            comp_bound = (
                n_warps
                * max(comp_cycles_warp / self.issue_rate, lsu_cycles_warp)
                / sched_efficiency
            )
            lat_bound = (
                n_warps * mem_cycles_warp / (mwp * memory_ilp) / sched_efficiency
            )
            bw_bound = (
                wave_blocks * dram_bytes_per_block / bytes_per_cycle_sm
                if bytes_per_cycle_sm > 0
                else 0.0
            )
            serial = (
                comp_cycles_warp
                + mem_cycles_warp / memory_ilp
                + lsu_cycles_warp
                + critical_path_cycles
            ) / sched_efficiency

            wave_cycles = max(comp_bound, lat_bound, bw_bound, serial)
            total_cycles += wave_cycles
            warp_cycles_weighted += n_warps_eff * wave_cycles
            bound_totals["compute"] += comp_bound
            bound_totals["latency"] += lat_bound
            bound_totals["bandwidth"] += bw_bound
            bound_totals["serial"] += serial

        binding = max(bound_totals, key=bound_totals.get)
        avg_resident = warp_cycles_weighted / total_cycles if total_cycles > 0 else 0.0

        time_s = total_cycles / (arch.clock_ghz * 1e9)
        time_s += arch.kernel_launch_overhead_us * 1e-6

        return LaunchTiming(
            cycles=total_cycles,
            time_s=time_s,
            compute_bound_cycles=bound_totals["compute"],
            latency_bound_cycles=bound_totals["latency"],
            bandwidth_bound_cycles=bound_totals["bandwidth"],
            serial_warp_cycles=bound_totals["serial"],
            waves=waves,
            avg_resident_warps=avg_resident,
            n_active_sms=n_active_sms,
            binding=binding,
        )
