"""GPU kernel models: functional numpy ports + simulator workload models.

The paper's three use cases — CUDA SDK parallel reduction (7 variants),
CUDA SDK tiled matrix multiplication, Rodinia Needleman–Wunsch — plus
extra validation workloads (vector add, matrix transpose).
"""

from .base import Kernel, WorkloadAccumulator
from .cpu import (
    CpuMatMulKernel,
    CpuReductionKernel,
    CpuStencilKernel,
    CpuVectorAddKernel,
)
from .extra import TransposeKernel, VectorAddKernel
from .jacobi import JacobiSolverKernel
from .matmul import MatMulKernel
from .needleman_wunsch import NeedlemanWunschKernel
from .reduction import REDUCTION_VARIANTS, ReductionKernel
from .stencil import StencilKernel

__all__ = [
    "Kernel",
    "CpuMatMulKernel",
    "CpuReductionKernel",
    "CpuStencilKernel",
    "CpuVectorAddKernel",
    "WorkloadAccumulator",
    "TransposeKernel",
    "VectorAddKernel",
    "JacobiSolverKernel",
    "MatMulKernel",
    "NeedlemanWunschKernel",
    "REDUCTION_VARIANTS",
    "ReductionKernel",
    "StencilKernel",
]


def kernel_registry() -> dict[str, Kernel]:
    """All predefined kernel models by name."""
    registry: dict[str, Kernel] = dict(REDUCTION_VARIANTS)
    for k in (
        CpuMatMulKernel(),
        CpuReductionKernel(),
        CpuStencilKernel(),
        CpuVectorAddKernel(),
        JacobiSolverKernel(),
        MatMulKernel(),
        NeedlemanWunschKernel(),
        StencilKernel(),
        VectorAddKernel(),
        TransposeKernel("naive"),
        TransposeKernel("tiled"),
        TransposeKernel("tiled", padded=False),
    ):
        registry[k.name] = k
    return registry
