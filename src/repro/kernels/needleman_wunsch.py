"""Needleman–Wunsch sequence alignment (Rodinia ``nw``).

The Section 6.1.2 use case: global DNA sequence alignment by dynamic
programming over an (L+1) x (L+1) score matrix filled "from top left to
bottom right with scores representing the value of the maximum weighted
path ending at each cell".

The Rodinia GPU implementation "processes the score matrix in parallel
along diagonal strips using hierarchical parallelism (at grid-level and
TB-level)": the matrix is tiled into 16x16 blocks; two kernels sweep
the block anti-diagonals (upper-left triangle, then lower-right), one
kernel launch per block diagonal with as many thread blocks as the
diagonal holds. "For maximum occupancy, each TB only has 16 threads",
which in fact leaves warps half empty and SMs underfed — the low
``achieved_occupancy`` that dominates the paper's Fig. 6a. Within a
block, threads walk the 31 cell anti-diagonals of the tile in shared
memory; the diagonal indexing strides 16 words between lanes, which
costs shared-memory bank conflicts, and the west-halo column read is a
fully uncoalesced global access — hence the ``l1_global_load_miss`` /
``l1_shared_bank_conflict`` presence the paper observes on Fermi.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.banks import conflict_degree_from_lanes
from repro.gpusim.workload import KernelWorkload

from .base import Kernel, WorkloadAccumulator

__all__ = ["NeedlemanWunschKernel"]

_TILE = 16


class NeedlemanWunschKernel(Kernel):
    """Rodinia-style Needleman–Wunsch model.

    ``problem`` is the sequence length ``L`` (multiple of the 16-cell
    tile). The functional path computes the full DP score; a blocked
    variant (:meth:`run_blocked`) mirrors the GPU tile traversal order
    and is used to validate that tiling preserves the recurrence.
    """

    name = "needleman-wunsch"

    def __init__(self, penalty: int = 10) -> None:
        if penalty <= 0:
            raise ValueError("penalty must be positive")
        self.penalty = penalty

    # ------------------------------------------------------------------
    # functional implementation
    # ------------------------------------------------------------------

    def _make_inputs(self, L: int, rng) -> np.ndarray:
        """Random similarity matrix (Rodinia initializes scores randomly)."""
        rng = np.random.default_rng(rng if rng is not None else L)
        return rng.integers(-10, 11, size=(L, L), dtype=np.int16)

    def reference(self, problem: int, rng=None) -> int:
        """Row-by-row DP (vectorized along columns is impossible due to
        the west dependency, so this walks rows with a running max)."""
        L = int(problem)
        sim = self._make_inputs(L, rng)
        p = self.penalty
        prev = -p * np.arange(L + 1, dtype=np.int64)
        for i in range(1, L + 1):
            cur = np.empty(L + 1, dtype=np.int64)
            cur[0] = -p * i
            diag = prev[:-1] + sim[i - 1]
            north = prev[1:] - p
            best = np.maximum(diag, north)
            west = cur[0]
            for j in range(1, L + 1):
                west = cur[j] = max(best[j - 1], west - p)
            prev = cur
        return int(prev[L])

    def run(self, problem: int, rng=None) -> int:
        """Anti-diagonal (wavefront) DP — the parallel order the GPU
        kernels implement, vectorized along each diagonal."""
        L = int(problem)
        sim = self._make_inputs(L, rng)
        p = self.penalty
        # F is indexed [i, j]; keep three rolling anti-diagonals.
        # Diagonal d holds cells with i + j == d, i in [max(0,d-L), min(d,L)].
        prev2 = np.array([0], dtype=np.int64)                 # d = 0
        prev1 = np.array([-p, -p], dtype=np.int64)            # d = 1: (0,1),(1,0)
        if L == 0:
            return 0
        for d in range(2, 2 * L + 1):
            lo, hi = max(0, d - L), min(d, L)
            i = np.arange(lo, hi + 1)
            j = d - i
            cur = np.full(i.size, np.iinfo(np.int64).min, dtype=np.int64)

            p1_lo = max(0, d - 1 - L)
            p2_lo = max(0, d - 2 - L)

            interior = (i >= 1) & (j >= 1)
            ii, jj = i[interior], j[interior]
            diag = prev2[(ii - 1) - p2_lo] + sim[ii - 1, jj - 1]
            north = prev1[(ii - 1) - p1_lo] - p   # cell (i-1, j)
            west = prev1[ii - p1_lo] - p          # cell (i, j-1)
            cur[interior] = np.maximum(diag, np.maximum(north, west))
            if lo == 0:
                cur[0] = -p * d if d <= L else cur[0]
            if hi == d:  # j == 0 boundary
                cur[-1] = -p * d if d <= L else cur[-1]
            prev2, prev1 = prev1, cur
        return int(prev1[-1] if L > 0 else 0)

    def run_blocked(self, problem: int, rng=None) -> int:
        """Tile-by-tile traversal in GPU launch order (small L only)."""
        L = int(problem)
        self._check(L)
        sim = self._make_inputs(L, rng)
        p = self.penalty
        F = np.zeros((L + 1, L + 1), dtype=np.int64)
        F[0, :] = -p * np.arange(L + 1)
        F[:, 0] = -p * np.arange(L + 1)
        B = L // _TILE

        def do_block(bi: int, bj: int) -> None:
            for ii in range(bi * _TILE + 1, (bi + 1) * _TILE + 1):
                for jj in range(bj * _TILE + 1, (bj + 1) * _TILE + 1):
                    F[ii, jj] = max(
                        F[ii - 1, jj - 1] + sim[ii - 1, jj - 1],
                        F[ii - 1, jj] - p,
                        F[ii, jj - 1] - p,
                    )

        for d in range(1, B + 1):          # kernel 1: upper-left sweep
            for bi in range(d):
                do_block(bi, d - 1 - bi)
        for d in range(B - 1, 0, -1):      # kernel 2: lower-right sweep
            for bi in range(B - d, B):
                do_block(bi, 2 * B - 1 - d - bi)
        return int(F[L, L])

    def _check(self, L: int) -> None:
        if L < _TILE or L % _TILE:
            raise ValueError(f"sequence length must be a positive multiple of {_TILE}")

    # ------------------------------------------------------------------
    # workload model
    # ------------------------------------------------------------------

    def _block_template(self, L: int, arch: GPUArchitecture) -> WorkloadAccumulator:
        """Per-block instruction/access walk (identical for every tile)."""
        acc = WorkloadAccumulator(
            name=self.name,
            grid_blocks=1,
            threads_per_block=_TILE,
            regs_per_thread=min(21, arch.max_registers_per_thread),
            shared_mem_per_block=(_TILE + 1) * (_TILE + 1) * 4 + _TILE * _TILE * 4,
        )
        matrix_bytes = (L + 1) * (L + 1) * 4
        row_words = L + 1
        # Halo rows load independently; the DP recurrence below is the
        # dependent chain (one shared round-trip + max ops + barrier per
        # anti-diagonal step, plus serialized conflict replays).
        acc.set_memory_ilp(2.0)

        # Halo/row loads: 17 tile rows + 16 reference rows, one 16-lane
        # request each, rows far apart in memory. Small L1 reuse from the
        # shared tile edges of the previous diagonal.
        acc.global_access("load", _TILE + 1 + _TILE, lanes=_TILE, stride_words=1,
                          unique_bytes=2 * matrix_bytes)
        # West halo column: 16 cells with a row stride — fully uncoalesced.
        acc.global_access("load", 1, lanes=_TILE, stride_words=row_words,
                          unique_bytes=2 * matrix_bytes)
        # Stage into shared memory.
        acc.shared("store", _TILE + 1 + _TILE, lanes=_TILE)
        acc.arith(4, lanes=_TILE)
        acc.sync(1, lanes=_TILE)

        # Anti-diagonal DP over the tile: 31 steps. Thread t handles cell
        # (t, d - t) of temp[17][17]: lane word index = t*17 + (d - t)
        # = 16 t + d -> 16-word stride between lanes.
        for step in range(2 * _TILE - 1):
            width = step + 1 if step < _TILE else 2 * _TILE - 1 - step
            lanes = np.arange(width)
            words = lanes * (_TILE + 1) + (step - lanes)
            degree = conflict_degree_from_lanes(words, banks=arch.shared_banks)
            acc.branch(1, lanes=width, divergent=1.0 if width < _TILE else 0.0)
            acc.shared("load", 3, lanes=width, conflict_degree=degree)
            acc.arith(5, lanes=width)
            acc.shared("store", 1, lanes=width, conflict_degree=degree)
            acc.sync(1, lanes=_TILE)
            acc.chain(28.0 + 5.0 + 2.0 * (degree - 1.0) + 15.0)

        # Write the tile back.
        acc.shared("load", _TILE, lanes=_TILE)
        acc.global_access("store", _TILE, lanes=_TILE, stride_words=1,
                          unique_bytes=matrix_bytes)
        acc.arith(2, lanes=_TILE)
        return acc

    def workloads(self, problem: int, arch: GPUArchitecture) -> list[KernelWorkload]:
        L = int(problem)
        self._check(L)
        B = L // _TILE
        template = self._block_template(L, arch)
        launches: list[KernelWorkload] = []
        for d in range(1, B + 1):          # kernel 1
            launches.append(template.build_for_grid(d, name=f"nw_kernel1(d={d})"))
        for d in range(B - 1, 0, -1):      # kernel 2
            launches.append(template.build_for_grid(d, name=f"nw_kernel2(d={d})"))
        return launches

    # ------------------------------------------------------------------

    def characteristics(self, problem: int) -> dict[str, float]:
        return {"size": float(problem)}

    def default_sweep(self) -> list[int]:
        """Sequence lengths 64..8256 with a pitch of 64 — "generating
        129 trials" (Section 6.1.2)."""
        return [int(s) for s in np.arange(64, 8256 + 1, 64)]
