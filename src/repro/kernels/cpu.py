"""CPU kernel models (the Section 7 "BF on CPUs" extension).

Multicore ports of the bundled data-parallel kernels: a functional
numpy implementation plus a :class:`~repro.cpusim.simulator.CPUWorkload`
description (vectorized instruction mix, cache behaviour, parallel
fraction). They plug into the same `Campaign`/`BlackForest` pipeline as
the GPU kernels — the point of the paper's §7 remark that the method
"is equally applicable for all processing units in the platform".
"""

from __future__ import annotations

import numpy as np

from repro.cpusim.arch import CPUArchitecture
from repro.cpusim.simulator import CPUWorkload

from .base import Kernel

__all__ = ["CpuVectorAddKernel", "CpuReductionKernel", "CpuStencilKernel", "CpuMatMulKernel"]

_LINE_BYTES = 64.0


class _CpuKernel(Kernel):
    """Shared plumbing for the CPU kernels."""

    def characteristics(self, problem) -> dict[str, float]:
        return {"size": float(problem)}

    def _vw(self, arch: CPUArchitecture) -> int:
        if getattr(arch, "family", None) != "cpu":
            raise ValueError(
                f"{self.name} is a CPU kernel; got architecture "
                f"{getattr(arch, 'name', arch)!r}"
            )
        return arch.vector_width


class CpuVectorAddKernel(_CpuKernel):
    """c = a + b over n float32 elements, OpenMP-style parallel for."""

    name = "cpu-vectorAdd"

    def _make_inputs(self, n, rng):
        rng = np.random.default_rng(rng if rng is not None else int(n))
        return (rng.random(int(n), dtype=np.float32),
                rng.random(int(n), dtype=np.float32))

    def reference(self, problem, rng=None):
        a, b = self._make_inputs(problem, rng)
        return a + b

    def run(self, problem, rng=None):
        a, b = self._make_inputs(problem, rng)
        out = np.empty_like(a)
        np.add(a, b, out=out)
        return out

    def workloads(self, problem, arch: CPUArchitecture) -> list[CPUWorkload]:
        n = int(problem)
        if n < 1:
            raise ValueError("need at least one element")
        vw = self._vw(arch)
        vec_ops = n / vw
        return [CPUWorkload(
            name=f"{self.name}(n={n})",
            scalar_instructions=vec_ops * 1.5,       # loop control, addresses
            simd_instructions=vec_ops * 3.0,         # 2 loads + add (stores free)
            branches=vec_ops * 0.5,
            branch_miss_rate=0.001,
            l1_loads=2.0 * vec_ops,
            l1_miss_fraction=min(1.0, vw * 4.0 / _LINE_BYTES),
            llc_miss_fraction=1.0,                   # pure streaming
            working_set_bytes=3.0 * n * 4.0,
            parallel_fraction=0.999,
        )]

    def default_sweep(self):
        return [int(s) for s in np.unique(
            np.round(np.logspace(16, 26, 50, base=2.0)).astype(int))]


class CpuReductionKernel(_CpuKernel):
    """Parallel sum over n float32 values (per-thread partials + combine)."""

    name = "cpu-reduce"

    def _make_input(self, n, rng):
        rng = np.random.default_rng(rng if rng is not None else int(n))
        return rng.random(int(n))

    def reference(self, problem, rng=None):
        return float(np.sum(self._make_input(problem, rng)))

    def run(self, problem, rng=None):
        x = self._make_input(problem, rng)
        # per-thread partials, then a combine pass — the OpenMP shape
        parts = np.add.reduceat(x, np.arange(0, x.size, max(1, x.size // 16)))
        return float(np.sum(parts))

    def workloads(self, problem, arch: CPUArchitecture) -> list[CPUWorkload]:
        n = int(problem)
        if n < 2:
            raise ValueError("need at least two elements")
        vw = self._vw(arch)
        vec_ops = n / vw
        return [CPUWorkload(
            name=f"{self.name}(n={n})",
            scalar_instructions=vec_ops * 1.0 + arch.n_cores * 20.0,
            simd_instructions=vec_ops * 2.0,         # load + add
            branches=vec_ops * 0.5,
            branch_miss_rate=0.001,
            l1_loads=vec_ops,
            l1_miss_fraction=min(1.0, vw * 4.0 / _LINE_BYTES),
            llc_miss_fraction=1.0,
            working_set_bytes=n * 4.0,
            parallel_fraction=0.995,                 # combine tail is serial
        )]

    def default_sweep(self):
        return [int(s) for s in np.unique(
            np.round(np.logspace(16, 26, 50, base=2.0)).astype(int))]


class CpuStencilKernel(_CpuKernel):
    """One 5-point Jacobi sweep over an n x n grid (row-parallel)."""

    name = "cpu-stencil2d"

    def _make_input(self, n, rng):
        rng = np.random.default_rng(rng if rng is not None else int(n))
        return rng.random((int(n) + 2, int(n) + 2))

    def reference(self, problem, rng=None):
        a = self._make_input(problem, rng)
        return 0.25 * (a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:])

    def run(self, problem, rng=None):
        a = self._make_input(problem, rng)
        out = np.empty((int(problem), int(problem)))
        # row blocks, as the parallel-for would partition them
        n = int(problem)
        for r0 in range(0, n, 64):
            r1 = min(r0 + 64, n)
            out[r0:r1] = 0.25 * (
                a[r0:r1, 1:-1] + a[r0 + 2:r1 + 2, 1:-1]
                + a[r0 + 1:r1 + 1, :-2] + a[r0 + 1:r1 + 1, 2:]
            )
        return out

    def workloads(self, problem, arch: CPUArchitecture) -> list[CPUWorkload]:
        n = int(problem)
        if n < 8:
            raise ValueError("grid too small")
        vw = self._vw(arch)
        cells = float(n) * n
        vec_ops = cells / vw
        # rows stream through the cache; each 64B line of the input is
        # touched by ~3 row sweeps but loaded fresh only once per sweep
        return [CPUWorkload(
            name=f"{self.name}(n={n})",
            scalar_instructions=vec_ops * 2.0,
            simd_instructions=vec_ops * 8.0,          # 5 loads + 3 adds (x0.25 fused)
            branches=vec_ops * 0.3,
            branch_miss_rate=0.002,
            l1_loads=5.0 * vec_ops,
            l1_miss_fraction=min(1.0, vw * 8.0 / _LINE_BYTES) / 5.0,
            llc_miss_fraction=1.0,
            working_set_bytes=2.0 * (n + 2.0) ** 2 * 8.0,
            parallel_fraction=0.998,
        )]

    def default_sweep(self):
        return [64 * k for k in (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)]


class CpuMatMulKernel(_CpuKernel):
    """Blocked SGEMM-style multiply (n x n, float32)."""

    name = "cpu-matrixMul"

    def _make_inputs(self, n, rng):
        rng = np.random.default_rng(rng if rng is not None else int(n))
        return rng.random((int(n), int(n))), rng.random((int(n), int(n)))

    def reference(self, problem, rng=None):
        a, b = self._make_inputs(problem, rng)
        return a @ b

    def run(self, problem, rng=None):
        n = int(problem)
        a, b = self._make_inputs(problem, rng)
        t = 64
        c = np.zeros((n, n))
        for i0 in range(0, n, t):
            for k0 in range(0, n, t):
                for j0 in range(0, n, t):
                    c[i0:i0 + t, j0:j0 + t] += (
                        a[i0:i0 + t, k0:k0 + t] @ b[k0:k0 + t, j0:j0 + t]
                    )
        return c

    def workloads(self, problem, arch: CPUArchitecture) -> list[CPUWorkload]:
        n = int(problem)
        if n < 64 or n % 64:
            raise ValueError("matrix size must be a positive multiple of 64")
        vw = self._vw(arch)
        fma_vec = float(n) ** 3 / vw
        working = 2.0 * n * n * 4.0
        llc_bytes = arch.llc_mb * (1 << 20)
        # blocked: L1 misses only on tile boundaries; LLC contains the
        # panels until the matrices outgrow it
        return [CPUWorkload(
            name=f"{self.name}(n={n})",
            scalar_instructions=fma_vec * 0.5,
            simd_instructions=fma_vec * 2.0,          # load + fma
            branches=fma_vec * 0.1,
            branch_miss_rate=0.001,
            l1_loads=2.0 * fma_vec,
            l1_miss_fraction=0.02,
            llc_miss_fraction=min(1.0, 0.05 * max(1.0, working / llc_bytes)),
            working_set_bytes=working,
            parallel_fraction=0.999,
        )]

    def default_sweep(self):
        return [64 * k for k in (1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32)]
