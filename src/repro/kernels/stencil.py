"""2-D 5-point Jacobi stencil — a cache-sensitive extension workload.

Beyond the paper's three use cases (its §7 asks for "more
applications"), the stencil is the canonical kernel whose performance
hinges on *L1 locality*: each output point reads its north/south/east/
west neighbours, so a warp's rows overlap heavily with its neighbours'
and the hit rate depends on how much of the working set the cache
holds. Unlike the analytic-footprint kernels, this model feeds an
actual **sampled address trace** of a representative thread block
through the set-associative cache simulator
(:class:`repro.gpusim.memory.CacheSim`) to obtain the L1 hit fraction —
exercising the trace-driven path of the memory model end to end.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.memory import CacheSim
from repro.gpusim.workload import KernelWorkload

from .base import Kernel, WorkloadAccumulator

__all__ = ["StencilKernel"]

_BX, _BY = 32, 8  # thread block shape: one warp per row


class StencilKernel(Kernel):
    """One Jacobi sweep ``out[i,j] = c*(in[N]+in[S]+in[E]+in[W]) + d*in``.

    ``problem`` is the grid dimension ``n`` (n x n interior points).
    """

    name = "stencil2d"

    def __init__(self, coeff: float = 0.25, center: float = 0.0) -> None:
        self.coeff = coeff
        self.center = center
        self._hit_cache: dict[tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    # functional implementation
    # ------------------------------------------------------------------

    def _make_input(self, n: int, rng) -> np.ndarray:
        rng = np.random.default_rng(rng if rng is not None else n)
        return rng.random((n + 2, n + 2))

    def reference(self, problem: int, rng=None) -> np.ndarray:
        a = self._make_input(int(problem), rng)
        return (
            self.coeff * (a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:])
            + self.center * a[1:-1, 1:-1]
        )

    def run(self, problem: int, rng=None) -> np.ndarray:
        """Block-by-block sweep in kernel launch order."""
        n = int(problem)
        self._check(n)
        a = self._make_input(n, rng)
        out = np.empty((n, n))
        for by in range(0, n, _BY):
            for bx in range(0, n, _BX):
                ys = slice(by, min(by + _BY, n))
                xs = slice(bx, min(bx + _BX, n))
                yi = slice(ys.start + 1, ys.stop + 1)
                xi = slice(xs.start + 1, xs.stop + 1)
                out[ys, xs] = (
                    self.coeff * (
                        a[ys.start:ys.stop, xi]          # north
                        + a[ys.start + 2:ys.stop + 2, xi]  # south
                        + a[yi, xs.start:xs.stop]        # west
                        + a[yi, xs.start + 2:xs.stop + 2]  # east
                    )
                    + self.center * a[yi, xi]
                )
        return out

    def _check(self, n: int) -> None:
        if n < _BX or n % _BX or n % _BY:
            raise ValueError(
                f"grid size must be a positive multiple of {_BX} (and {_BY})"
            )

    # ------------------------------------------------------------------
    # workload model
    # ------------------------------------------------------------------

    def _block_trace(self, n: int) -> np.ndarray:
        """Lane byte addresses of one representative interior block.

        Rows are warp requests (5 reads per output row of the block:
        N, S, W, E, C), columns the 32 lanes.
        """
        row_bytes = (n + 2) * 4
        base = (n // 2) * row_bytes + (n // 2) * 4  # an interior block corner
        lanes = np.arange(_BX) * 4
        rows = []
        for ty in range(_BY):
            center = base + ty * row_bytes + lanes
            rows.extend([
                center - row_bytes,   # north
                center + row_bytes,   # south
                center - 4,           # west
                center + 4,           # east
                center,               # centre
            ])
        return np.asarray(rows, dtype=np.int64)

    def _l1_hit_fraction(self, n: int, arch: GPUArchitecture) -> float:
        """Trace-driven L1 hit rate for the 5-point pattern.

        The representative block's request trace runs through the
        set-associative LRU model; with several blocks resident per SM
        the effective per-block share of L1 shrinks accordingly.
        """
        key = (arch.name, n)
        hit = self._hit_cache.get(key)
        if hit is None:
            if not arch.l1_caches_global_loads:
                hit = 0.0
            else:
                # per-block share of the L1 (about 4-6 blocks resident)
                share = arch.l1.size_bytes // 4
                share_geom = arch.l1.__class__(
                    max(share, arch.l1.line_bytes * arch.l1.associativity),
                    arch.l1.line_bytes,
                    arch.l1.associativity,
                )
                sim = CacheSim(share_geom)
                hit = sim.warm_trace_hit_rate(
                    self._block_trace(n), arch.global_mem_segment_bytes
                )
            self._hit_cache[key] = hit
        return hit

    def workloads(self, problem: int, arch: GPUArchitecture) -> list[KernelWorkload]:
        n = int(problem)
        self._check(n)
        blocks = (n // _BX) * (n // _BY)
        threads = _BX * _BY
        warps_pb = threads // 32

        acc = WorkloadAccumulator(
            name=f"{self.name}(n={n})",
            grid_blocks=blocks,
            threads_per_block=threads,
            regs_per_thread=14,
            shared_mem_per_block=0,
        )
        acc.set_memory_ilp(4.0)  # the five reads are independent

        l1_hit = self._l1_hit_fraction(n, arch)
        grid_bytes = (n + 2) * (n + 2) * 4
        # five reads per thread row: N/S/W/E/C (the unaligned W/E reads
        # span two segments -> handled by the trace-derived hit rate)
        acc.global_access("load", 5 * warps_pb, stride_words=1,
                          unique_bytes=grid_bytes, l1_hit_fraction=l1_hit)
        acc.arith(6 * warps_pb, fma=True)
        acc.arith(4 * warps_pb)
        acc.branch(warps_pb)
        acc.global_access("store", warps_pb, stride_words=1,
                          unique_bytes=n * n * 4)
        return [acc.build()]

    # ------------------------------------------------------------------

    def characteristics(self, problem: int) -> dict[str, float]:
        return {"size": float(problem)}

    def default_sweep(self) -> list[int]:
        return [_BX * k for k in (4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128)]
