"""Additional workload models beyond the paper's three use cases.

These widen the validation surface of the toolchain (the paper's §7
"more applications" future work): a trivially bandwidth-bound vector
add, and the classic matrix-transpose pair whose naive variant is the
textbook uncoalesced-access bottleneck.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.banks import conflict_degree_for_stride
from repro.gpusim.workload import KernelWorkload

from .base import Kernel, WorkloadAccumulator

__all__ = ["VectorAddKernel", "TransposeKernel"]

_BLOCK = 256


class VectorAddKernel(Kernel):
    """c = a + b, one element per thread; the canonical streaming kernel."""

    name = "vectorAdd"

    def _make_inputs(self, n: int, rng):
        rng = np.random.default_rng(rng if rng is not None else n)
        return rng.random(n), rng.random(n)

    def reference(self, problem: int, rng=None) -> np.ndarray:
        a, b = self._make_inputs(int(problem), rng)
        return a + b

    def run(self, problem: int, rng=None) -> np.ndarray:
        a, b = self._make_inputs(int(problem), rng)
        out = np.empty_like(a)
        blocks = math.ceil(a.size / _BLOCK)
        for blk in range(blocks):  # per-block grid walk, as the kernel does
            s = slice(blk * _BLOCK, min((blk + 1) * _BLOCK, a.size))
            out[s] = a[s] + b[s]
        return out

    def workloads(self, problem: int, arch: GPUArchitecture) -> list[KernelWorkload]:
        n = int(problem)
        if n < 1:
            raise ValueError("need at least one element")
        blocks = math.ceil(n / _BLOCK)
        warps_pb = _BLOCK // 32
        acc = WorkloadAccumulator(
            name=f"{self.name}(n={n})", grid_blocks=blocks,
            threads_per_block=_BLOCK, regs_per_thread=10, shared_mem_per_block=0,
        )
        acc.set_memory_ilp(2.0)
        acc.arith(warps_pb * 3)
        acc.branch(warps_pb)
        acc.global_access("load", 2 * warps_pb, word_bytes=8, unique_bytes=2 * n * 8)
        acc.global_access("store", warps_pb, word_bytes=8, unique_bytes=n * 8)
        return [acc.build()]

    def characteristics(self, problem: int) -> dict[str, float]:
        return {"size": float(problem)}

    def default_sweep(self) -> list[int]:
        return [int(s) for s in np.unique(
            np.round(np.logspace(14, 24, 60, base=2.0)).astype(int))]


class TransposeKernel(Kernel):
    """Matrix transpose: naive (uncoalesced stores) or shared-memory tiled.

    ``variant``: "naive" reads rows and writes columns (stride-n global
    stores); "tiled" stages a 32x32 tile in shared memory so both the
    read and the write are coalesced — with an optional bank-conflict
    bug when ``padded=False`` (the canonical +1 padding lesson).
    """

    def __init__(self, variant: str = "naive", padded: bool = True,
                 tile: int = 32) -> None:
        if variant not in ("naive", "tiled"):
            raise ValueError("variant must be 'naive' or 'tiled'")
        self.variant = variant
        self.padded = padded
        self.tile = tile
        self.name = f"transpose-{variant}" + ("" if padded or variant == "naive" else "-conflict")

    def _make_input(self, n: int, rng) -> np.ndarray:
        rng = np.random.default_rng(rng if rng is not None else n)
        return rng.random((n, n))

    def reference(self, problem: int, rng=None) -> np.ndarray:
        return self._make_input(int(problem), rng).T.copy()

    def run(self, problem: int, rng=None) -> np.ndarray:
        n = int(problem)
        self._check(n)
        a = self._make_input(n, rng)
        t = self.tile
        out = np.empty_like(a)
        for by in range(0, n, t):
            for bx in range(0, n, t):
                out[bx : bx + t, by : by + t] = a[by : by + t, bx : bx + t].T
        return out

    def _check(self, n: int) -> None:
        if n < self.tile or n % self.tile:
            raise ValueError(f"matrix size must be a positive multiple of {self.tile}")

    def workloads(self, problem: int, arch: GPUArchitecture) -> list[KernelWorkload]:
        n = int(problem)
        self._check(n)
        t = self.tile
        blocks = (n // t) ** 2
        threads = t * 8  # t x 8 thread blocks, 4 rows per thread (SDK shape)
        warps_pb = max(1, threads // 32)
        rows_per_warp = t // 4  # each warp covers 32 lanes => 32/t tile rows x4
        acc = WorkloadAccumulator(
            name=f"{self.name}(n={n})", grid_blocks=blocks,
            threads_per_block=threads, regs_per_thread=12,
            shared_mem_per_block=(t * (t + 1) * 4 if self.variant == "tiled" else 0),
        )
        loads_per_warp = 4  # 4 row-chunks per warp
        acc.set_memory_ilp(4.0)
        acc.arith(warps_pb * 6)
        acc.branch(warps_pb)
        acc.global_access("load", warps_pb * loads_per_warp, stride_words=1,
                          unique_bytes=n * n * 4)
        if self.variant == "naive":
            # column-major stores: lanes n words apart
            acc.global_access("store", warps_pb * loads_per_warp, stride_words=n,
                              unique_bytes=n * n * 4)
        else:
            degree = 1.0 if self.padded else conflict_degree_for_stride(t, 32)
            acc.shared("store", warps_pb * loads_per_warp)
            acc.sync(warps_pb)
            acc.shared("load", warps_pb * loads_per_warp, conflict_degree=degree)
            acc.global_access("store", warps_pb * loads_per_warp, stride_words=1,
                              unique_bytes=n * n * 4)
        return [acc.build()]

    def characteristics(self, problem: int) -> dict[str, float]:
        return {"size": float(problem)}

    def default_sweep(self) -> list[int]:
        return [self.tile * k for k in (8, 12, 16, 24, 32, 48, 64, 96, 128)]
