"""Tiled matrix multiplication (CUDA SDK ``matrixMul``).

The Section 6.1.1 use case: C = A x B for n x n matrices using b x b
shared-memory tiles (b = 16). A grid of (n/b)^2 thread blocks is
launched; each block walks n/b tile *phases*, loading one tile of A and
one of B into shared memory, multiplying them, and finally storing its
C tile. The kernel "performs O(n^3) computations and O(n^2) data
accesses" and is bandwidth-limited at large sizes; loads outnumber
stores by a factor of the block size, which is why store-throughput
counters surface as the bottleneck in the paper's Fig. 5a.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.memory import estimate_hit_fraction
from repro.gpusim.workload import KernelWorkload

from .base import Kernel, WorkloadAccumulator

__all__ = ["MatMulKernel"]


class MatMulKernel(Kernel):
    """Shared-memory tiled SGEMM-style kernel model.

    ``problem`` is the matrix dimension ``n`` (must be a multiple of the
    tile size).
    """

    name = "matrixMul"

    def __init__(self, tile: int = 16) -> None:
        if tile < 4 or tile & (tile - 1):
            raise ValueError("tile must be a power of two >= 4")
        self.tile = tile

    # ------------------------------------------------------------------
    # functional implementation
    # ------------------------------------------------------------------

    def _make_inputs(self, n: int, rng) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(rng if rng is not None else n)
        return rng.random((n, n)), rng.random((n, n))

    def reference(self, problem: int, rng=None) -> np.ndarray:
        a, b = self._make_inputs(int(problem), rng)
        return a @ b

    def run(self, problem: int, rng=None) -> np.ndarray:
        """Tile-phase walk mirroring the CUDA kernel's loop structure."""
        n = int(problem)
        self._check(n)
        a, bmat = self._make_inputs(n, rng)
        t = self.tile
        c = np.zeros((n, n))
        phases = n // t
        for by in range(phases):
            for bx in range(phases):
                acc = np.zeros((t, t))
                for ph in range(phases):
                    a_tile = a[by * t : (by + 1) * t, ph * t : (ph + 1) * t]
                    b_tile = bmat[ph * t : (ph + 1) * t, bx * t : (bx + 1) * t]
                    acc += a_tile @ b_tile
                c[by * t : (by + 1) * t, bx * t : (bx + 1) * t] = acc
        return c

    def _check(self, n: int) -> None:
        if n < self.tile or n % self.tile:
            raise ValueError(f"matrix size must be a positive multiple of {self.tile}")

    # ------------------------------------------------------------------
    # workload model
    # ------------------------------------------------------------------

    def workloads(self, problem: int, arch: GPUArchitecture) -> list[KernelWorkload]:
        n = int(problem)
        self._check(n)
        t = self.tile
        phases = n // t
        blocks = phases * phases
        threads = t * t
        warps_pb = max(1, threads // 32)
        rows_per_warp = max(1, 32 // t)  # threads of one warp span this many rows

        acc = WorkloadAccumulator(
            name=f"{self.name}(n={n})",
            grid_blocks=blocks,
            threads_per_block=threads,
            regs_per_thread=min(20, arch.max_registers_per_thread),
            shared_mem_per_block=2 * t * t * 4,
        )

        # Each phase issues two independent tile loads per warp row;
        # the accumulator's FMA recurrence is the dependent chain
        # (nominal SP FMA latency ~18 cycles, shared load ~28).
        acc.set_memory_ilp(4.0)
        acc.chain(phases * (2 * 28.0 + t * 18.0 / 4.0))

        # Tiles are single-use per block: no intra-L1 reuse; cross-block
        # reuse (each A-row tile is read by `phases` blocks) is L2's job.
        matrix_bytes = 2 * n * n * 4
        total_load_requests = blocks * warps_pb * phases * 2 * rows_per_warp
        l2_tx_per_request = 128 // arch.l2_line_bytes
        l2_hit = estimate_hit_fraction(
            total_load_requests * l2_tx_per_request,
            matrix_bytes,
            arch.l2_line_bytes,
            arch.l2.size_bytes,
        )

        per_warp_loads = phases * 2 * rows_per_warp  # A and B, one row segment each
        acc.global_access(
            "load", warps_pb * per_warp_loads, lanes=t, stride_words=1,
            unique_bytes=matrix_bytes, l1_hit_fraction=0.0, l2_hit_fraction=l2_hit,
        )
        # address arithmetic + loop control per phase
        acc.arith(warps_pb * 4 * phases)
        acc.branch(warps_pb * phases)
        acc.sync(warps_pb * 2 * phases)  # two __syncthreads per phase
        # tile staging into shared memory
        acc.shared("store", warps_pb * 2 * phases)
        # inner product: per phase, t iterations of (2 shared loads, 1 FMA)
        acc.shared("load", warps_pb * 2 * t * phases)
        acc.arith(warps_pb * t * phases, fma=True)
        # C tile store: one row segment per warp-row
        acc.global_access(
            "store", warps_pb * rows_per_warp, lanes=t, stride_words=1,
            unique_bytes=n * n * 4,
        )
        acc.arith(warps_pb * 2)
        return [acc.build()]

    # ------------------------------------------------------------------

    def characteristics(self, problem: int) -> dict[str, float]:
        return {"size": float(problem)}

    def default_sweep(self) -> list[int]:
        """24 matrix sizes, log-spaced over 2^5 .. 2^11 and rounded to
        tile multiples — "We vary the matrix size from 2^5 to 2^11
        (i.e., 24 runs)"."""
        raw = np.logspace(5, 11, 24, base=2.0)
        sizes: list[int] = []
        for s in raw:
            v = max(self.tile, int(round(s / self.tile)) * self.tile)
            while v in sizes:  # keep exactly 24 distinct runs
                v += self.tile
            sizes.append(v)
        return sorted(sizes)
