"""Iterative Jacobi solver — a *two-characteristic* workload.

The paper's data-collection stage says problem characteristics
"typically include different input parameters", and its choice of MARS
is motivated by "nonlinearities and parameter interactions" — which
only arise with more than one characteristic. This kernel provides
that case: a problem is the pair ``(size, iterations)`` and the
execution time is (roughly) their product, so counter models must
capture an interaction term.

Implementation-wise the solver launches the 2-D 5-point stencil sweep
(:class:`repro.kernels.stencil.StencilKernel`) ``iterations`` times,
ping-ponging between two grids — the standard GPU Jacobi loop with one
kernel launch per sweep.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.workload import KernelWorkload

from .base import Kernel
from .stencil import StencilKernel

__all__ = ["JacobiSolverKernel"]


class JacobiSolverKernel(Kernel):
    """``problem`` is ``(grid_size, iterations)``."""

    name = "jacobi"

    def __init__(self, coeff: float = 0.25, center: float = 0.0) -> None:
        self._sweep = StencilKernel(coeff=coeff, center=center)

    @staticmethod
    def _unpack(problem) -> tuple[int, int]:
        try:
            n, iters = problem
        except (TypeError, ValueError):
            raise ValueError(
                "jacobi problems are (grid_size, iterations) pairs"
            ) from None
        n, iters = int(n), int(iters)
        if iters < 1:
            raise ValueError("iterations must be >= 1")
        return n, iters

    # ------------------------------------------------------------------
    # functional implementation
    # ------------------------------------------------------------------

    def reference(self, problem, rng=None) -> np.ndarray:
        n, iters = self._unpack(problem)
        a = self._sweep._make_input(n, rng)
        for _ in range(iters):
            interior = (
                self._sweep.coeff * (
                    a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
                )
                + self._sweep.center * a[1:-1, 1:-1]
            )
            a = a.copy()
            a[1:-1, 1:-1] = interior
        return a[1:-1, 1:-1]

    def run(self, problem, rng=None) -> np.ndarray:
        """Ping-pong sweeps in launch order (delegating each sweep to
        the stencil kernel's blocked traversal semantics)."""
        n, iters = self._unpack(problem)
        a = self._sweep._make_input(n, rng)
        for _ in range(iters):
            out = np.empty((n, n))
            # one full sweep (the stencil's blocked walk, inlined over
            # the current grid state)
            out[:, :] = (
                self._sweep.coeff * (
                    a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
                )
                + self._sweep.center * a[1:-1, 1:-1]
            )
            a = a.copy()
            a[1:-1, 1:-1] = out
        return a[1:-1, 1:-1]

    # ------------------------------------------------------------------
    # workload model
    # ------------------------------------------------------------------

    def workloads(self, problem, arch: GPUArchitecture) -> list[KernelWorkload]:
        n, iters = self._unpack(problem)
        sweep = self._sweep.workloads(n, arch)[0]
        launches = []
        for it in range(iters):
            launches.append(
                KernelWorkload(
                    name=f"{self.name}(n={n},it={it})",
                    grid_blocks=sweep.grid_blocks,
                    threads_per_block=sweep.threads_per_block,
                    regs_per_thread=sweep.regs_per_thread,
                    shared_mem_per_block=sweep.shared_mem_per_block,
                    arithmetic_instructions=sweep.arithmetic_instructions,
                    fma_instructions=sweep.fma_instructions,
                    branches=sweep.branches,
                    divergent_branches=sweep.divergent_branches,
                    other_instructions=sweep.other_instructions,
                    avg_active_threads=sweep.avg_active_threads,
                    global_accesses=sweep.global_accesses,
                    shared_accesses=sweep.shared_accesses,
                    memory_ilp=sweep.memory_ilp,
                    critical_path_cycles=sweep.critical_path_cycles,
                )
            )
        return launches

    # ------------------------------------------------------------------

    def characteristics(self, problem) -> dict[str, float]:
        n, iters = self._unpack(problem)
        return {"size": float(n), "iterations": float(iters)}

    def default_sweep(self) -> list[tuple[int, int]]:
        """A (size x iterations) grid: 8 sizes x 6 iteration counts."""
        sizes = [128, 192, 256, 384, 512, 768, 1024, 1536]
        iterations = [1, 2, 4, 8, 16, 32]
        return [(n, it) for n in sizes for it in iterations]
