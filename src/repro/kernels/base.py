"""Kernel model interface.

Each kernel in ``repro.kernels`` plays two roles:

* a **functional implementation** (`run`) — a faithful numpy port of the
  CUDA kernel's arithmetic, validated against a reference
  (`reference`); this keeps the workload models honest (they describe
  programs that actually compute the right thing);
* a **workload model** (`workloads`) — the per-launch
  :class:`~repro.gpusim.workload.KernelWorkload` descriptions the GPU
  simulator consumes: launch geometry, instruction mix, and memory
  access patterns, derived from the same loop structure as `run`.

``characteristics`` exposes the *problem characteristics* the paper
uses as extra predictors (e.g. matrix size, sequence length), and
``default_sweep`` reproduces each use case's experimental design
(Sections 5 and 6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.workload import KernelWorkload

__all__ = ["Kernel", "WorkloadAccumulator"]


class Kernel(ABC):
    """A GPU kernel model (functional implementation + workload model)."""

    #: Short identifier, e.g. ``"reduce1"``.
    name: str = "kernel"

    @abstractmethod
    def run(self, problem: Any, rng: np.random.Generator | int | None = None):
        """Execute the algorithm functionally (numpy) and return its result."""

    @abstractmethod
    def reference(self, problem: Any, rng: np.random.Generator | int | None = None):
        """Ground-truth result for :meth:`run` validation."""

    @abstractmethod
    def workloads(
        self, problem: Any, arch: GPUArchitecture
    ) -> list[KernelWorkload]:
        """Per-launch workload descriptions for the simulator."""

    @abstractmethod
    def characteristics(self, problem: Any) -> dict[str, float]:
        """Problem characteristics used as model predictors (e.g. size)."""

    @abstractmethod
    def default_sweep(self) -> list[Any]:
        """The problem instances of the paper's experimental design."""

    def __repr__(self) -> str:
        return f"<Kernel {self.name}>"


class WorkloadAccumulator:
    """Builds a :class:`KernelWorkload` from per-block loop walks.

    Kernel models walk their loop structure once *per block shape* and
    record warp-level instructions together with the number of live
    threads; the accumulator scales the per-block totals by the grid
    size and tracks the thread/warp ratio that becomes
    ``warp_execution_efficiency``.
    """

    def __init__(self, name: str, grid_blocks: int, threads_per_block: int,
                 regs_per_thread: int, shared_mem_per_block: int) -> None:
        self.name = name
        self.grid_blocks = grid_blocks
        self.threads_per_block = threads_per_block
        self.regs_per_thread = regs_per_thread
        self.shared_mem_per_block = shared_mem_per_block
        self._arith = 0.0
        self._fma = 0.0
        self._branches = 0.0
        self._divergent = 0.0
        self._other = 0.0
        self._thread_insts = 0.0
        self._warp_insts = 0.0
        # shared accesses bucketed by (kind, conflict degree)
        self._shared: dict[tuple[str, float], float] = {}
        self._global: list[dict] = []
        self.memory_ilp = 1.0
        self._critical_path = 0.0

    def set_memory_ilp(self, ilp: float) -> None:
        """Independent in-flight global loads per warp (>= 1)."""
        self.memory_ilp = float(ilp)

    def chain(self, cycles: float) -> None:
        """Add dependent-latency cycles to the per-warp critical path."""
        self._critical_path += float(cycles)

    # counts below are *per block*; `warps` = warp instructions issued,
    # `lanes` = live threads per warp instruction.

    def _note(self, warps: float, lanes: float) -> None:
        self._warp_insts += warps
        self._thread_insts += warps * lanes

    def arith(self, warps: float, lanes: float = 32.0, fma: bool = False) -> None:
        self._arith += warps
        if fma:
            self._fma += warps
        self._note(warps, lanes)

    def branch(self, warps: float, lanes: float = 32.0, divergent: float = 0.0) -> None:
        self._branches += warps
        self._divergent += divergent
        self._note(warps, lanes)

    def sync(self, warps: float, lanes: float = 32.0) -> None:
        self._other += warps
        self._note(warps, lanes)

    def shared(self, kind: str, warps: float, lanes: float = 32.0,
               conflict_degree: float = 1.0) -> None:
        key = (kind, round(float(conflict_degree), 6))
        self._shared[key] = self._shared.get(key, 0.0) + warps
        self._note(warps, lanes)

    def global_access(self, kind: str, warps: float, lanes: int = 32,
                      stride_words: int = 1, word_bytes: int = 4,
                      unique_bytes: int | None = None,
                      l1_hit_fraction: float | None = None,
                      l2_hit_fraction: float | None = None) -> None:
        self._global.append(dict(kind=kind, requests=warps, active_lanes=lanes,
                                 stride_words=stride_words, word_bytes=word_bytes,
                                 unique_bytes=unique_bytes,
                                 l1_hit_fraction=l1_hit_fraction,
                                 l2_hit_fraction=l2_hit_fraction))
        self._note(warps, float(lanes))

    def build(self) -> KernelWorkload:
        return self.build_for_grid(self.grid_blocks)

    def build_for_grid(self, grid_blocks: int, name: str | None = None) -> KernelWorkload:
        """Scale the recorded per-block counts to an arbitrary grid.

        Lets kernels that launch the same block shape many times with
        varying grids (e.g. Needleman–Wunsch's per-diagonal launches)
        walk the block loop structure once and emit one workload per
        launch cheaply.
        """
        from repro.gpusim.workload import GlobalAccessPattern, SharedAccessPattern

        g = grid_blocks
        shared = [
            SharedAccessPattern(kind=k, requests=max(1, round(w * g)),
                                conflict_degree=deg)
            for (k, deg), w in sorted(self._shared.items())
            if w > 0
        ]
        gl = []
        for spec in self._global:
            requests = max(1, round(spec["requests"] * g))
            gl.append(GlobalAccessPattern(
                kind=spec["kind"], requests=requests,
                word_bytes=spec["word_bytes"], stride_words=spec["stride_words"],
                active_lanes=spec["active_lanes"],
                unique_bytes=spec["unique_bytes"],
                l1_hit_fraction=spec["l1_hit_fraction"],
                l2_hit_fraction=spec["l2_hit_fraction"],
            ))
        avg_lanes = (
            self._thread_insts / self._warp_insts if self._warp_insts > 0 else 32.0
        )
        return KernelWorkload(
            name=name if name is not None else self.name,
            grid_blocks=g,
            threads_per_block=self.threads_per_block,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=self.shared_mem_per_block,
            arithmetic_instructions=max(0, round(self._arith * g)),
            fma_instructions=max(0, round(self._fma * g)),
            branches=max(0, round(self._branches * g)),
            divergent_branches=min(
                max(0, round(self._divergent * g)), max(0, round(self._branches * g))
            ),
            other_instructions=max(0, round(self._other * g)),
            avg_active_threads=float(np.clip(avg_lanes, 1e-6, 32.0)),
            global_accesses=gl,
            shared_accesses=shared,
            memory_ilp=self.memory_ilp,
            critical_path_cycles=self._critical_path,
        )
