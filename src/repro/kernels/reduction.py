"""CUDA SDK parallel reduction kernels (reduce0 .. reduce6).

The SDK's reduction benchmark is "an educational example to showcase
various CUDA optimization techniques" (paper Section 5.1); each variant
fixes the bottleneck the previous one exposed:

==========  ===========================================================
reduce0     interleaved addressing, divergent branching and expensive
            modulo arithmetic
reduce1     interleaved addressing with strided shared-memory indexing;
            removes the modulo but introduces **shared-memory bank
            conflicts** (the Section 5.2 use case)
reduce2     sequential addressing; conflict-free but half the threads
            idle from the first tree level (Section 5.3)
reduce3     first add during global load (halves the block count)
reduce4     unrolls the last warp (no syncs/branches below 32 threads)
reduce5     completely unrolled tree
reduce6     grid-stride loop, multiple elements per thread — maximal
            bandwidth utilization (Section 5.4)
==========  ===========================================================

Reducing a large array takes multiple kernel launches ("there should be
multiple kernel launches to serve as synchronization points"): each
launch reduces N elements to one partial sum per thread block, and the
kernel is re-launched on the partials until one value remains.

Every variant has a functional numpy implementation that mirrors the
kernel's exact combination tree (validated against ``np.sum``) and a
workload model that walks the same loop structure to count warp
instructions, shared-memory conflict degrees and global traffic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.banks import conflict_degree_for_stride
from repro.gpusim.workload import KernelWorkload

from .base import Kernel, WorkloadAccumulator

__all__ = ["ReductionKernel", "REDUCTION_VARIANTS"]

_BLOCK = 256
#: Instruction cost of a software integer modulo on Fermi/Kepler-class
#: hardware (no hardware modulo unit) — reduce0's "expensive modulo".
_MODULO_COST = 12


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


class ReductionKernel(Kernel):
    """One variant of the SDK reduction benchmark.

    ``problem`` is the array length ``n`` (int); inputs are generated
    deterministically from the problem seed so repeated runs profile the
    same computation.
    """

    def __init__(self, variant: int, block_size: int = _BLOCK) -> None:
        if not 0 <= variant <= 6:
            raise ValueError("variant must be in 0..6")
        if block_size < 32 or block_size & (block_size - 1):
            raise ValueError("block_size must be a power of two >= 32")
        self.variant = variant
        self.block_size = block_size
        self.name = f"reduce{variant}"

    # ------------------------------------------------------------------
    # functional implementation
    # ------------------------------------------------------------------

    def _make_input(self, n: int, rng) -> np.ndarray:
        rng = np.random.default_rng(rng if rng is not None else n)
        return rng.random(n)

    def reference(self, problem: int, rng=None) -> float:
        return float(np.sum(self._make_input(int(problem), rng)))

    def _launch_geometry(self, n: int) -> tuple[int, int]:
        """(blocks, threads) for a launch over ``n`` elements."""
        b = min(self.block_size, max(32, _next_pow2(n)))
        if self.variant <= 2:
            blocks = math.ceil(n / b)
        elif self.variant <= 5:
            blocks = max(1, math.ceil(n / (2 * b)))
        else:
            blocks = min(64, max(1, math.ceil(n / (2 * b))))
        return blocks, b

    def _reduce_once(self, x: np.ndarray) -> np.ndarray:
        """One kernel launch: array -> per-block partial sums."""
        n = x.size
        blocks, b = self._launch_geometry(n)
        if self.variant <= 2:
            data = np.zeros(blocks * b)
            data[:n] = x
            sdata = data.reshape(blocks, b)
        elif self.variant <= 5:
            data = np.zeros(blocks * 2 * b)
            data[:n] = x
            pairs = data.reshape(blocks, 2, b)
            sdata = pairs[:, 0, :] + pairs[:, 1, :]
        else:
            grid_stride = blocks * 2 * b
            sdata = np.zeros((blocks, b))
            for start in range(0, n, grid_stride):
                chunk = np.zeros(grid_stride)
                take = min(grid_stride, n - start)
                chunk[:take] = x[start : start + take]
                pairs = chunk.reshape(blocks, 2, b)
                sdata = sdata + pairs[:, 0, :] + pairs[:, 1, :]
        sdata = sdata.copy()

        if self.variant <= 1:
            # interleaved addressing: identical combination tree for the
            # modulo (reduce0) and strided-index (reduce1) formulations
            s = 1
            while s < b:
                sdata[:, :: 2 * s] += sdata[:, s :: 2 * s]
                s *= 2
        else:
            # sequential addressing
            s = b // 2
            while s >= 1:
                sdata[:, :s] += sdata[:, s : 2 * s]
                s //= 2
        return sdata[:, 0].copy()

    def run(self, problem: int, rng=None) -> float:
        x = self._make_input(int(problem), rng)
        while x.size > 1:
            x = self._reduce_once(x)
        return float(x[0])

    # ------------------------------------------------------------------
    # workload model
    # ------------------------------------------------------------------

    # Nominal pipeline latencies for the dependent-chain estimate
    # (Fermi/Kepler-class shared-memory load and barrier costs).
    _SHARED_LAT = 28.0
    _SYNC_COST = 20.0

    def _tree_phase(self, acc: WorkloadAccumulator, b: int) -> None:
        """Record the in-block combination tree for one launch.

        Each tree level depends on the previous one, so besides the
        throughput counts the walk accumulates the per-warp dependent
        chain: one shared-memory round-trip, the add, the barrier and
        the serialized conflict replays per level.
        """
        v = self.variant
        warps_pb = max(1, b // 32)

        def level_chain(degree: float = 1.0, synced: bool = True) -> None:
            acc.chain(self._SHARED_LAT + 4.0 + 2.0 * (degree - 1.0)
                      + (self._SYNC_COST if synced else 0.0))

        if v == 0:
            s = 1
            while s < b:
                stride_t = 2 * s
                active_threads = b // stride_t
                # every thread evaluates the modulo and the branch
                acc.arith(warps_pb * _MODULO_COST)
                if stride_t <= 32:
                    lanes = 32 // stride_t
                    active_warps = warps_pb
                    divergent = warps_pb
                else:
                    lanes = 1
                    active_warps = max(1, active_threads)
                    divergent = active_warps
                acc.branch(warps_pb, divergent=divergent)
                acc.shared("load", 2 * active_warps, lanes=lanes)
                acc.shared("store", active_warps, lanes=lanes)
                acc.arith(active_warps, lanes=lanes)  # the add
                acc.sync(warps_pb)
                level_chain()
                s *= 2
        elif v == 1:
            s = 1
            while s < b:
                active_threads = b // (2 * s)
                active_warps = max(1, math.ceil(active_threads / 32))
                lanes = min(32, active_threads)
                degree = conflict_degree_for_stride(2 * s, active_lanes=lanes)
                acc.arith(warps_pb * 2)                     # index computation
                acc.branch(warps_pb, divergent=1.0 if lanes < 32 else 0.0)
                acc.shared("load", 2 * active_warps, lanes=lanes,
                           conflict_degree=degree)
                acc.shared("store", active_warps, lanes=lanes,
                           conflict_degree=degree)
                acc.arith(active_warps, lanes=lanes)
                acc.sync(warps_pb)
                level_chain(degree)
                s *= 2
        elif v in (2, 3):
            s = b // 2
            while s >= 1:
                active_warps = max(1, math.ceil(s / 32))
                lanes = min(32, s)
                acc.arith(warps_pb)                          # index tid + s
                acc.branch(warps_pb, divergent=1.0 if 0 < s < 32 else 0.0)
                acc.shared("load", 2 * active_warps, lanes=lanes)
                acc.shared("store", active_warps, lanes=lanes)
                acc.arith(active_warps, lanes=lanes)
                acc.sync(warps_pb)
                level_chain()
                s //= 2
        else:  # 4, 5, 6: (partially) unrolled
            looped = v == 4  # reduce4 still runs a loop above warp level
            s = b // 2
            while s >= 32:
                active_warps = max(1, math.ceil(s / 32))
                lanes = min(32, s)
                if looped:
                    acc.arith(warps_pb)
                    acc.branch(warps_pb)
                acc.shared("load", 2 * active_warps, lanes=lanes)
                acc.shared("store", active_warps, lanes=lanes)
                acc.arith(active_warps, lanes=lanes)
                acc.sync(warps_pb)
                level_chain()
                s //= 2
            # warp-synchronous unrolled tail: one warp, no syncs/branches
            acc.branch(warps_pb, divergent=1.0)  # if (tid < 32)
            tail_levels = min(6, int(math.log2(max(2, min(b, 64)))))
            for _ in range(tail_levels):
                acc.shared("load", 2, lanes=32)
                acc.shared("store", 1, lanes=32)
                acc.arith(1, lanes=32)
                level_chain(synced=False)

    def _load_phase(self, acc: WorkloadAccumulator, n: int, blocks: int,
                    b: int) -> None:
        v = self.variant
        warps_pb = max(1, b // 32)
        stream_bytes = n * 8  # float64 words in the numpy port; 8B loads
        if v <= 2:
            acc.arith(warps_pb * 2)
            acc.global_access("load", warps_pb, word_bytes=8,
                              unique_bytes=stream_bytes)
            acc.shared("store", warps_pb)
            acc.sync(warps_pb)
        elif v <= 5:
            acc.arith(warps_pb * 4)
            acc.global_access("load", 2 * warps_pb, word_bytes=8,
                              unique_bytes=stream_bytes)
            acc.arith(warps_pb)
            acc.shared("store", warps_pb)
            acc.sync(warps_pb)
        else:
            grid_stride = blocks * 2 * b
            iters = max(1, math.ceil(n / grid_stride))
            acc.arith(warps_pb * 3 * iters)
            acc.branch(warps_pb * iters)
            acc.global_access("load", 2 * warps_pb * iters, word_bytes=8,
                              unique_bytes=stream_bytes)
            acc.arith(warps_pb * 2 * iters)
            acc.shared("store", warps_pb)
            acc.sync(warps_pb)

    def _launch_workload(self, n: int, arch: GPUArchitecture) -> KernelWorkload:
        blocks, b = self._launch_geometry(n)
        acc = WorkloadAccumulator(
            name=f"{self.name}(n={n})",
            grid_blocks=blocks,
            threads_per_block=b,
            regs_per_thread=min(18, arch.max_registers_per_thread),
            shared_mem_per_block=b * 8,
        )
        acc.set_memory_ilp(2.0 if self.variant >= 3 else 1.5)
        self._load_phase(acc, n, blocks, b)
        self._tree_phase(acc, b)
        # thread 0 writes the block partial
        acc.branch(1, lanes=32, divergent=1.0)
        acc.global_access("store", 1, lanes=1, word_bytes=8)
        return acc.build()

    def workloads(self, problem: int, arch: GPUArchitecture) -> list[KernelWorkload]:
        n = int(problem)
        if n < 2:
            raise ValueError("reduction needs at least 2 elements")
        launches = []
        while n > 1:
            wl = self._launch_workload(n, arch)
            launches.append(wl)
            n = wl.grid_blocks
            if n == 1:
                break
        return launches

    # ------------------------------------------------------------------

    def characteristics(self, problem: int) -> dict[str, float]:
        return {"size": float(problem)}

    def default_sweep(self) -> list[int]:
        """~80 array lengths, log-spaced over 2^14 .. 2^24.

        The paper collects "less than 100 data samples (training and
        test set, combined)" per kernel.
        """
        sizes = np.unique(
            np.round(np.logspace(np.log2(1 << 14), np.log2(1 << 24), 80, base=2.0))
            .astype(int)
        )
        return [int(s) for s in sizes]


#: The three variants analyzed in the paper's Section 5 plus the rest of
#: the SDK family for completeness.
REDUCTION_VARIANTS: dict[str, ReductionKernel] = {
    f"reduce{v}": ReductionKernel(v) for v in range(7)
}
