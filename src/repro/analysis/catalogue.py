"""Counter-catalogue linter (rules BF001–BF008).

Verifies the internal consistency of
:data:`repro.gpusim.counters.CATALOGUE` — the contract every other
stage (simulator, profiler, statistical pipeline) builds on. A single
mislabeled family tag or predictor flag here silently corrupts every
downstream importance ranking, so these rules are all ERROR severity.

Every check takes the catalogue mapping as an argument (defaulting to
the shipped one via the runner) so tests can drive rules against
deliberately corrupted catalogues.
"""

from __future__ import annotations

import keyword
from typing import Mapping

from repro.gpusim.counters import (
    CounterSpec,
    EXCLUSIVE_FAMILY_COUNTERS,
    FAMILIES,
    METRIC_DEPENDENCIES,
    REPLAY_COUNTER_PAIRING,
    RESPONSE_PROXY_COUNTERS,
    TABLE1_COUNTERS,
    UNIT_VOCABULARY,
)

from .findings import Severity, rule

__all__ = ["lint_catalogue"]

Catalogue = Mapping[str, CounterSpec]


@rule("BF001", Severity.ERROR, "catalogue",
      "counter family tags are valid and mutually consistent")
def check_family_tags(r, catalogue: Catalogue):
    for name, spec in catalogue.items():
        if not spec.families:
            yield r.finding("family tuple is empty", subject=name)
            continue
        unknown = [f for f in spec.families if f not in FAMILIES]
        if unknown:
            yield r.finding(
                f"unknown families {unknown}", subject=name,
                families=list(spec.families),
            )
        if len(set(spec.families)) != len(spec.families):
            yield r.finding("duplicate family tags", subject=name,
                            families=list(spec.families))
        if "cpu" in spec.families and len(set(spec.families)) > 1:
            yield r.finding(
                "cpu counters cannot be shared with GPU families",
                subject=name, families=list(spec.families),
            )


@rule("BF002", Severity.ERROR, "catalogue",
      "counter kind is 'event' or 'metric'")
def check_kind(r, catalogue: Catalogue):
    for name, spec in catalogue.items():
        if spec.kind not in ("event", "metric"):
            yield r.finding(f"invalid kind {spec.kind!r}", subject=name)


@rule("BF003", Severity.ERROR, "catalogue",
      "units come from the closed vocabulary; events are raw counts")
def check_units(r, catalogue: Catalogue):
    for name, spec in catalogue.items():
        if spec.unit not in UNIT_VOCABULARY:
            yield r.finding(
                f"unit {spec.unit!r} not in vocabulary "
                f"{sorted(UNIT_VOCABULARY)}", subject=name,
            )
        elif spec.kind == "event" and spec.unit != "count":
            yield r.finding(
                f"event counters increment raw counts, got unit {spec.unit!r}",
                subject=name,
            )


@rule("BF004", Severity.ERROR, "catalogue",
      "family-exclusive counters carry the right tag and their "
      "cross-family counterparts exist")
def check_family_exclusives(r, catalogue: Catalogue):
    for name, family in EXCLUSIVE_FAMILY_COUNTERS.items():
        spec = catalogue.get(name)
        if spec is None:
            continue  # absence is legal; mistagging is not
        if tuple(spec.families) != (family,):
            yield r.finding(
                f"must be exclusive to {family!r} "
                f"(got {list(spec.families)}) — e.g. a Kepler-tagged "
                f"l1_global_load_hit would leak Fermi L1 events into "
                f"Kepler feature vectors",
                subject=name, expected=family, families=list(spec.families),
            )
    # The bank-conflict counter renames must travel together: shipping
    # one side of the pairing without the other breaks hardware scaling.
    sides = {
        fam: [n for n in names if n in catalogue]
        for fam, names in REPLAY_COUNTER_PAIRING.items()
    }
    if any(sides.values()) and not all(
        len(sides[fam]) == len(names)
        for fam, names in REPLAY_COUNTER_PAIRING.items()
    ):
        yield r.finding(
            "incomplete bank-conflict counter pairing: "
            f"fermi side {sides.get('fermi', [])} vs kepler side "
            f"{sides.get('kepler', [])}",
            subject="replay pairing",
        )


@rule("BF005", Severity.ERROR, "catalogue",
      "response-proxy counters are not flagged as predictors (and "
      "vice versa)")
def check_predictor_flags(r, catalogue: Catalogue):
    for name, spec in catalogue.items():
        if name in RESPONSE_PROXY_COUNTERS and spec.predictor:
            yield r.finding(
                "direct response proxy must have predictor=False "
                "(would let the forest predict time from time)",
                subject=name,
            )
        elif spec.predictor is False and name not in RESPONSE_PROXY_COUNTERS:
            yield r.finding(
                "predictor=False but not a declared response proxy; "
                "either flag it in RESPONSE_PROXY_COUNTERS or make it "
                "a predictor",
                subject=name,
            )


@rule("BF006", Severity.ERROR, "catalogue",
      "derived metrics reference only defined events available on the "
      "same family")
def check_metric_dependencies(r, catalogue: Catalogue):
    for name, spec in catalogue.items():
        if spec.kind != "metric":
            if name in METRIC_DEPENDENCIES:
                yield r.finding(
                    "event counters must not declare metric dependencies",
                    subject=name,
                )
            continue
        groups = METRIC_DEPENDENCIES.get(name)
        if groups is None:
            yield r.finding(
                "derived metric has no METRIC_DEPENDENCIES entry",
                subject=name,
            )
            continue
        for group in groups:
            undefined = [dep for dep in group if dep not in catalogue]
            if undefined:
                yield r.finding(
                    f"formula references undefined counters {undefined}",
                    subject=name,
                )
            resolvable = [dep for dep in group if dep in catalogue]
            for family in spec.families:
                if not any(
                    catalogue[dep].available_on(family) for dep in resolvable
                ):
                    yield r.finding(
                        f"no event of dependency group {list(group)} is "
                        f"available on {family!r}",
                        subject=name, family=family,
                    )


@rule("BF007", Severity.ERROR, "catalogue",
      "the Table 1 sample references only catalogued counters")
def check_table1(r, catalogue: Catalogue, table1: list[str] | None = None):
    names = TABLE1_COUNTERS if table1 is None else table1
    for name in names:
        if name not in catalogue:
            yield r.finding("Table 1 counter missing from catalogue",
                            subject=name)


@rule("BF008", Severity.WARNING, "catalogue",
      "counter names are lowercase identifiers with a documented meaning")
def check_hygiene(r, catalogue: Catalogue):
    for name, spec in catalogue.items():
        if (not name.isidentifier() or name != name.lower()
                or keyword.iskeyword(name)):
            yield r.finding("name is not a lowercase identifier", subject=name)
        if spec.name != name:
            yield r.finding(
                f"catalogue key disagrees with spec name {spec.name!r}",
                subject=name,
            )
        if not spec.meaning.strip():
            yield r.finding("meaning is empty", subject=name)


def lint_catalogue(catalogue: Catalogue | None = None):
    """Run all catalogue rules; defaults to the shipped CATALOGUE."""
    from repro.gpusim.counters import CATALOGUE

    from .findings import run_rules

    return run_rules("catalogue", CATALOGUE if catalogue is None else catalogue)
