"""Campaign plan checker: pre-flight rules BF501–BF505.

A campaign is an *experiment design* before it is a dataset: the
problems swept become the design matrix the statistical pipeline fits.
Stevens & Klöckner (arXiv:1904.09538) make the case for analyzing what
a model can learn from its features *before* fitting; these rules do
that statically for a planned sweep, before any launch burns budget:

* **BF501** — design-matrix rank: the varied problem characteristics
  must be linearly independent (and something must vary at all), or
  the fit is under-identified no matter how many runs are collected.
* **BF502** — near-collinearity: two varied characteristics moving in
  near lockstep (|r| ≥ 0.99) make coefficients/importances unstable.
* **BF503** — response/counter coverage: the targeted predictor must
  be able to read what it fits on the planned architecture (power is
  only readable on Kepler GPUs and CPUs; transfer fits need a
  non-empty common predictor-counter set across train/test families).
* **BF504** — transfer-fit arch overlap: a hardware-scaling plan needs
  a test architecture distinct from the training one.
* **BF505** — cost estimate: launches × measured per-launch cost from
  ``BENCH_core.json``; an estimate over ``budget_s`` is an ERROR.

The checker runs three ways: ``repro lint --plan plan.json`` from the
CLI, :func:`lint_plan` from code, and automatically as
:func:`preflight` at the top of :meth:`Campaign.run <repro.profiling.campaign.Campaign.run>`
(warn on ERROR findings, or raise under ``strict=True``).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from .findings import (
    Finding,
    InvariantViolation,
    Severity,
    rule,
    run_rules,
)

__all__ = [
    "CampaignPlan",
    "lint_plan",
    "plan_from_dict",
    "plan_from_file",
    "preflight",
    "bench_launch_cost_s",
]

#: Predictor targets a plan can declare; fixes what BF503/BF504 demand.
PREDICTOR_TARGETS = (
    "problem_scaling", "hardware_scaling", "power", "blackforest",
)

#: Architecture families whose platform exposes a power reading
#: (Kepler boards via nvidia-smi, CPUs via RAPL) — mirrors the gating
#: in :mod:`repro.profiling.profiler`.
POWER_FAMILIES = ("kepler", "cpu")

#: Correlation magnitude at which two varied characteristics count as
#: effectively collinear.
NEAR_COLLINEAR_R = 0.99


@dataclass
class CampaignPlan:
    """A campaign described statically — everything the checker needs,
    nothing it would have to run to learn."""

    kernel: object  # repro.kernels.base.Kernel
    arch: object    # GPUArchitecture | CPUArchitecture
    problems: list = field(default_factory=list)
    replicates: int = 1
    #: What the collected campaign will feed (one of
    #: :data:`PREDICTOR_TARGETS`); ``None`` skips predictor-specific
    #: rules — the in-``Campaign.run`` preflight uses that, since the
    #: campaign cannot know its downstream consumer.
    predictor: str | None = None
    #: Transfer target for ``hardware_scaling`` plans.
    test_arch: object | None = None
    #: Wall-clock budget for the whole sweep; ``None`` disables BF505's
    #: threshold (the estimate is still reported as INFO).
    budget_s: float | None = None

    def __post_init__(self) -> None:
        if not self.problems:
            self.problems = list(self.kernel.default_sweep())
        if self.predictor is not None \
                and self.predictor not in PREDICTOR_TARGETS:
            raise ValueError(
                f"unknown predictor target {self.predictor!r}; choose "
                f"from {list(PREDICTOR_TARGETS)}"
            )

    @property
    def subject(self) -> str:
        return f"{self.kernel.name}@{self.arch.name}"

    def design_matrix(self) -> tuple[np.ndarray, list[str]]:
        """(n_problems × n_characteristics) matrix and column names."""
        if not self.problems:
            return np.empty((0, 0)), []
        names = sorted(self.kernel.characteristics(self.problems[0]))
        rows = [
            [float(self.kernel.characteristics(p)[c]) for c in names]
            for p in self.problems
        ]
        return np.asarray(rows, dtype=float), names

    def varied_columns(self) -> tuple[np.ndarray, list[str]]:
        """The design-matrix columns that actually vary over the sweep."""
        X, names = self.design_matrix()
        if X.size == 0:
            return X, []
        keep = [
            j for j in range(X.shape[1])
            if np.unique(X[:, j]).size > 1
        ]
        return X[:, keep], [names[j] for j in keep]


# ---------------------------------------------------------------------------
# rules


@rule("BF501", Severity.ERROR, "plan",
      "the varied problem characteristics form a full-rank design matrix")
def check_design_rank(r, plan: CampaignPlan):
    X, varied = plan.varied_columns()
    if len(set(map(repr, plan.problems))) < 2:
        yield r.finding(
            f"sweep holds {len(plan.problems)} problem instance(s) with "
            f"no variation — a scaling fit needs at least two distinct "
            f"problems",
            subject=plan.subject, severity=Severity.WARNING,
            n_problems=len(plan.problems),
        )
        return
    if not varied:
        yield r.finding(
            "no problem characteristic varies across the sweep; the fit "
            "would regress on a constant design",
            subject=plan.subject, severity=Severity.WARNING,
        )
        return
    rank = int(np.linalg.matrix_rank(X - X.mean(axis=0)))
    if rank < len(varied):
        yield r.finding(
            f"design matrix is rank-deficient: {len(varied)} varied "
            f"characteristic(s) {varied} span only rank {rank} — the "
            f"fit cannot separate their effects",
            subject=plan.subject, varied=varied, rank=rank,
        )


@rule("BF502", Severity.WARNING, "plan",
      "no two varied characteristics move in near lockstep")
def check_collinearity(r, plan: CampaignPlan):
    X, varied = plan.varied_columns()
    if len(varied) < 2:
        return
    centered = X - X.mean(axis=0)
    rank = int(np.linalg.matrix_rank(centered))
    if rank < len(varied):
        return  # exactly collinear — BF501's ERROR already covers it
    corr = np.corrcoef(centered, rowvar=False)
    for i in range(len(varied)):
        for j in range(i + 1, len(varied)):
            r_ij = float(corr[i, j])
            if abs(r_ij) >= NEAR_COLLINEAR_R:
                yield r.finding(
                    f"characteristics {varied[i]!r} and {varied[j]!r} "
                    f"are nearly collinear over the sweep "
                    f"(|r| = {abs(r_ij):.4f}); their importances will "
                    f"be arbitrary — decorrelate the sweep grid",
                    subject=plan.subject, pair=[varied[i], varied[j]],
                    correlation=r_ij,
                )


@rule("BF503", Severity.ERROR, "plan",
      "the targeted predictor can read its inputs on the planned arch")
def check_counter_coverage(r, plan: CampaignPlan):
    if plan.predictor == "power" \
            and plan.arch.family not in POWER_FAMILIES:
        yield r.finding(
            f"power response targeted but family {plan.arch.family!r} "
            f"exposes no power reading (only "
            f"{'/'.join(POWER_FAMILIES)} platforms do); every run "
            f"would record power_w=None",
            subject=plan.subject, family=plan.arch.family,
        )
    if plan.predictor == "hardware_scaling" \
            and plan.test_arch is not None:
        from repro.gpusim.counters import predictor_counters

        try:
            train = set(predictor_counters(plan.arch.family))
            test = set(predictor_counters(plan.test_arch.family))
        except Exception:
            return  # unknown family is BF2xx territory, not a plan fault
        common = train & test
        if not common:
            yield r.finding(
                f"no predictor counter is available on both "
                f"{plan.arch.family!r} (train) and "
                f"{plan.test_arch.family!r} (test); a transfer fit has "
                f"nothing to learn from",
                subject=plan.subject,
                train_family=plan.arch.family,
                test_family=plan.test_arch.family,
            )


@rule("BF504", Severity.ERROR, "plan",
      "transfer fits name a test architecture distinct from training")
def check_transfer_overlap(r, plan: CampaignPlan):
    if plan.predictor != "hardware_scaling":
        return
    if plan.test_arch is None:
        yield r.finding(
            "hardware-scaling fit planned without a test architecture; "
            "the transfer protocol needs one to assess against",
            subject=plan.subject,
        )
    elif plan.test_arch.name == plan.arch.name:
        yield r.finding(
            f"test architecture equals the training architecture "
            f"({plan.arch.name}); that measures interpolation, not "
            f"hardware transfer",
            subject=plan.subject, arch=plan.arch.name,
        )


_BENCH_COST_CACHE: dict[str, float | None] = {}


def bench_launch_cost_s(bench_path: str | Path | None = None) -> float | None:
    """Measured per-profiled-run cost from a bench baseline, or None.

    Reads the ``campaign_sweep`` op of ``BENCH_core.json`` (wall seconds
    over profiled runs). Missing/unreadable baselines disable the cost
    estimate rather than failing the checker.
    """
    path = Path(bench_path) if bench_path is not None \
        else _default_bench_path()
    key = str(path)
    if key not in _BENCH_COST_CACHE:
        cost: float | None = None
        try:
            data = json.loads(path.read_text())
            for entry in data.get("results", []):
                if entry.get("op") == "campaign_sweep" \
                        and entry.get("n"):
                    cost = float(entry["wall_s"]) / float(entry["n"])
                    break
        except (OSError, ValueError, TypeError, KeyError):
            cost = None
        _BENCH_COST_CACHE[key] = cost
    return _BENCH_COST_CACHE[key]


def _default_bench_path() -> Path:
    # src/repro/analysis/plan.py -> repo root, where the baseline lives.
    return Path(__file__).resolve().parents[3] / "BENCH_core.json"


@rule("BF505", Severity.INFO, "plan",
      "the sweep's estimated cost is reported and fits the budget")
def check_cost(r, plan: CampaignPlan):
    per_launch = bench_launch_cost_s()
    if per_launch is None:
        return
    launches = len(plan.problems) * max(plan.replicates, 1)
    estimate = launches * per_launch
    if plan.budget_s is not None and estimate > plan.budget_s:
        yield r.finding(
            f"estimated sweep cost {estimate:.3f}s "
            f"({launches} launches × {per_launch * 1e3:.3f}ms measured "
            f"per launch) exceeds the {plan.budget_s:.3f}s budget",
            subject=plan.subject, severity=Severity.ERROR,
            launches=launches, estimate_s=estimate,
            budget_s=plan.budget_s,
        )
    else:
        yield r.finding(
            f"estimated sweep cost: {launches} launches × "
            f"{per_launch * 1e3:.3f}ms ≈ {estimate:.3f}s",
            subject=plan.subject, launches=launches,
            estimate_s=estimate,
        )


# ---------------------------------------------------------------------------
# entry points


def lint_plan(
    plan: CampaignPlan, select: Sequence[str] | None = None
) -> list[Finding]:
    """Every BF5xx rule against one plan."""
    return run_rules("plan", plan, select=select)


def plan_from_dict(data: dict) -> CampaignPlan:
    """Build a plan from its JSON form (names resolved via registries).

    Expected keys: ``kernel`` (registry name), ``arch`` (architecture
    name), optional ``problems``, ``replicates``, ``predictor``,
    ``test_arch``, ``budget_s``.
    """
    from repro.kernels import kernel_registry

    registry = kernel_registry()
    kernel_name = data["kernel"]
    if kernel_name not in registry:
        raise ValueError(
            f"unknown kernel {kernel_name!r}; choose from "
            f"{sorted(registry)}"
        )
    archs = _arch_registry()

    def resolve_arch(name: str):
        if name not in archs:
            raise ValueError(
                f"unknown architecture {name!r}; choose from "
                f"{sorted(archs)}"
            )
        return archs[name]

    problems = data.get("problems")
    return CampaignPlan(
        kernel=registry[kernel_name],
        arch=resolve_arch(data["arch"]),
        problems=[
            tuple(p) if isinstance(p, list) else p for p in problems
        ] if problems else [],
        replicates=int(data.get("replicates", 1)),
        predictor=data.get("predictor"),
        test_arch=(
            resolve_arch(data["test_arch"])
            if data.get("test_arch") else None
        ),
        budget_s=(
            float(data["budget_s"])
            if data.get("budget_s") is not None else None
        ),
    )


def plan_from_file(path: str | Path) -> CampaignPlan:
    return plan_from_dict(json.loads(Path(path).read_text()))


def _arch_registry() -> dict[str, object]:
    from repro.cpusim.arch import I7_SANDY, XEON_E5
    from repro.gpusim.arch import GTX480, GTX580, K20M

    return {a.name: a for a in (GTX480, GTX580, K20M, I7_SANDY, XEON_E5)}


def preflight(
    kernel, arch, problems, replicates: int, *, strict: bool = False
) -> list[Finding]:
    """The automatic plan check at the top of ``Campaign.run``.

    ERROR-severity findings raise :class:`InvariantViolation` under
    ``strict=True`` and emit a :class:`UserWarning` otherwise; INFO and
    WARNING findings are returned but never interrupt the run (a
    deliberate single-problem calibration sweep stays legal).
    """
    plan = CampaignPlan(
        kernel=kernel, arch=arch, problems=list(problems),
        replicates=replicates,
    )
    findings = lint_plan(plan)
    errors = [f for f in findings if f.severity >= Severity.ERROR]
    if errors:
        if strict:
            raise InvariantViolation(errors, subject=plan.subject)
        for f in errors:
            warnings.warn(
                f"campaign preflight: {f.format()}", UserWarning,
                stacklevel=3,
            )
    return findings
