"""GPU-architecture description validator (rules BF201–BF206).

An architecture description is the other half of every simulation
input: a GTX580 with a zero memory bandwidth or an inconsistent cache
geometry corrupts every counter vector collected on it just as surely
as a bad workload. These rules validate a
:class:`~repro.gpusim.arch.GPUArchitecture` in isolation — Table 2
scalars, occupancy geometry, cache shapes, and the family-specific
memory-path flags.
"""

from __future__ import annotations

import math

from repro.gpusim.arch import GPUArchitecture

from .findings import Severity, rule

__all__ = ["lint_arch"]

_GPU_FAMILIES = ("fermi", "kepler")


def _positive(value) -> bool:
    try:
        v = float(value)
    except (TypeError, ValueError):
        return False
    return math.isfinite(v) and v > 0


@rule("BF201", Severity.ERROR, "arch",
      "architecture family is a known GPU family")
def check_family(r, arch: GPUArchitecture):
    if arch.family not in _GPU_FAMILIES:
        yield r.finding(
            f"family {arch.family!r} is not one of {_GPU_FAMILIES}",
            subject=arch.name,
        )


@rule("BF202", Severity.ERROR, "arch",
      "Table 2 machine metrics are positive and finite")
def check_table2_scalars(r, arch: GPUArchitecture):
    scalars = {
        "warp_schedulers": arch.warp_schedulers,
        "clock_ghz": arch.clock_ghz,
        "n_sms": arch.n_sms,
        "cores_per_sm": arch.cores_per_sm,
        "mem_bandwidth_gbs": arch.mem_bandwidth_gbs,
        "max_registers_per_thread": arch.max_registers_per_thread,
        "l2_size_kb": arch.l2_size_kb,
    }
    for label, value in scalars.items():
        if not _positive(value):
            yield r.finding(f"{label}={value!r} must be positive and finite",
                            subject=arch.name)


@rule("BF203", Severity.ERROR, "arch",
      "scheduling/occupancy geometry is internally consistent")
def check_geometry(r, arch: GPUArchitecture):
    if arch.warp_size != 32:
        yield r.finding(
            f"warp_size={arch.warp_size}; every supported CUDA "
            "architecture schedules 32-lane warps", subject=arch.name,
        )
    for label, value in (
        ("max_warps_per_sm", arch.max_warps_per_sm),
        ("max_blocks_per_sm", arch.max_blocks_per_sm),
        ("registers_per_sm", arch.registers_per_sm),
        ("register_alloc_granularity", arch.register_alloc_granularity),
        ("shared_mem_per_sm", arch.shared_mem_per_sm),
        ("shared_mem_granularity", arch.shared_mem_granularity),
        ("shared_banks", arch.shared_banks),
        ("dispatch_units_per_scheduler", arch.dispatch_units_per_scheduler),
        ("lsu_units", arch.lsu_units),
    ):
        if not _positive(value):
            yield r.finding(f"{label}={value!r} must be positive",
                            subject=arch.name)
    if arch.max_threads_per_block < arch.warp_size:
        yield r.finding(
            f"max_threads_per_block={arch.max_threads_per_block} is "
            f"below one warp ({arch.warp_size})", subject=arch.name,
        )
    if arch.max_threads_per_block > arch.max_threads_per_sm:
        yield r.finding(
            f"max_threads_per_block={arch.max_threads_per_block} "
            f"exceeds the SM thread budget {arch.max_threads_per_sm} — "
            "no legal block could ever be resident", subject=arch.name,
        )


@rule("BF204", Severity.ERROR, "arch",
      "cache and coalescing geometry are consistent")
def check_memory_geometry(r, arch: GPUArchitecture):
    for label, geom in (("l1", arch.l1), ("l2", arch.l2)):
        if geom.n_sets < 1:
            yield r.finding(f"{label} cache has {geom.n_sets} sets",
                            subject=arch.name)
        if geom.line_bytes < 1 or geom.line_bytes & (geom.line_bytes - 1):
            yield r.finding(
                f"{label} line size {geom.line_bytes} is not a power of two",
                subject=arch.name,
            )
    if arch.global_mem_segment_bytes > arch.l1.line_bytes:
        yield r.finding(
            f"coalescing segment ({arch.global_mem_segment_bytes} B) "
            f"larger than the L1 line ({arch.l1.line_bytes} B)",
            subject=arch.name,
        )
    for label, value in (
        ("dram_latency_cycles", arch.dram_latency_cycles),
        ("l2_latency_cycles", arch.l2_latency_cycles),
        ("shared_latency_cycles", arch.shared_latency_cycles),
    ):
        if not _positive(value):
            yield r.finding(f"{label}={value!r} must be positive",
                            subject=arch.name)
    if _positive(arch.dram_latency_cycles) and _positive(
        arch.l2_latency_cycles
    ) and arch.l2_latency_cycles > arch.dram_latency_cycles:
        yield r.finding(
            f"L2 latency ({arch.l2_latency_cycles} cy) exceeds DRAM "
            f"latency ({arch.dram_latency_cycles} cy) — the cache would "
            "slow misses down", subject=arch.name,
        )


@rule("BF205", Severity.ERROR, "arch",
      "machine_metrics() exposes the complete Table 2 vector")
def check_machine_metrics(r, arch: GPUArchitecture):
    expected = {"wsched", "freq", "smp", "rco", "mbw", "l1c", "l2c"}
    try:
        metrics = arch.machine_metrics()
    except Exception as exc:  # noqa: BLE001 — a lint rule must not raise
        yield r.finding(f"machine_metrics() raised: {exc}", subject=arch.name)
        return
    missing = expected - metrics.keys()
    extra = metrics.keys() - expected
    if missing:
        yield r.finding(f"missing machine metrics {sorted(missing)}",
                        subject=arch.name)
    if extra:
        yield r.finding(f"unexpected machine metrics {sorted(extra)}",
                        subject=arch.name)
    for key, value in metrics.items():
        if not (isinstance(value, (int, float)) and math.isfinite(value)):
            yield r.finding(f"machine metric {key}={value!r} not finite",
                            subject=arch.name)


@rule("BF206", Severity.WARNING, "arch",
      "family-specific memory-path flags and power envelope are plausible")
def check_family_flags(r, arch: GPUArchitecture):
    if arch.family == "kepler" and arch.l1_caches_global_loads:
        yield r.finding(
            "Kepler GK-class parts serve global loads from L2; "
            "l1_caches_global_loads=True is the hardware-model analog "
            "of a Fermi counter leaking into a Kepler run",
            subject=arch.name,
        )
    if arch.static_power_w < 0 or arch.tdp_w <= 0:
        yield r.finding(
            f"power envelope invalid (static={arch.static_power_w} W, "
            f"tdp={arch.tdp_w} W)", subject=arch.name,
        )
    elif arch.static_power_w >= arch.tdp_w:
        yield r.finding(
            f"static power ({arch.static_power_w} W) at or above the "
            f"board TDP ({arch.tdp_w} W)", subject=arch.name,
        )


def lint_arch(arch: GPUArchitecture):
    """Run all architecture rules on one description."""
    from .findings import run_rules

    return run_rules("arch", arch)
