"""Artifact schema registry: versioned on-disk formats, rules BF601–BF605.

Every durable format the pipeline emits is registered here with its
schema tag, shape (single JSON document, JSONL stream, or headered
journal) and field specs:

=======================  ==========================================
tag                      written by
=======================  ==========================================
``repro-manifest/1``     :mod:`repro.obs.manifest` (campaign sidecar)
``repro-events/1``       :mod:`repro.obs.log` (JSONL event sink)
``repro-checkpoint/1``   :mod:`repro.profiling.checkpoint` (journal)
``repro-bench/1``        ``repro bench --json`` (BENCH_core.json)
``repro-bench-history/1``  :mod:`repro.obs.history` (bench journal)
``repro-campaign-meta/1``  :mod:`repro.profiling.repository`
                           (``meta.json``; tagless, matched by name)
``repro-fit/1``          :mod:`repro.serve.artifact` (servable fit)
``repro-fit-index/1``    :mod:`repro.serve.registry` (version index)
``repro-repo/1``         :mod:`repro.profiling.repository`
                         (``repo.json`` layout marker)
``repro-shard/1``        :mod:`repro.profiling.repository`
                         (per-bucket ``shard.json`` manifest)
``repro-matrix/1``       :mod:`repro.profiling.index`
                         (columnar counter-matrix header)
``repro-forest-state/1``  :mod:`repro.ml.incremental`
                          (incremental-fit forest state)
``repro-serve-health/1``  :mod:`repro.serve.server` (``ping``
                          readiness document — a wire shape, not a
                          file; ``repro query ping`` output)
``repro-telemetry/1``    :mod:`repro.obs.telemetry` (rotating JSONL
                         snapshot journal; heartbeats + scrapes)
``repro-flightrec/1``    :mod:`repro.obs.flightrec` (crash-triggered
                         ring-buffer dump)
=======================  ==========================================

Validation produces *findings*, not exceptions: a renamed field in a
manifest is a named BF6xx drift report pointing at the file, never a
``KeyError`` three layers up. The rules:

* **BF601** — the document carries a known schema tag (or matches a
  registered tagless format by filename).
* **BF602** — every required field of the declared schema is present.
* **BF603** — fields have the declared types; unrecognized fields are
  reported as drift (WARNING — readers ignore them, diffs should not).
* **BF604** — the document parses at all; a torn *trailing* JSONL line
  is a WARNING (crash-tolerant readers discard it by contract), torn
  anywhere else is an ERROR.
* **BF605** — journal structure: a checkpoint's header precedes entry
  lines and every entry pairs an index with records or a quarantine.

Used by ``repro lint --artifacts PATH``, wired into
:meth:`ProfileRepository.verify_all` and the event/history readers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .findings import Finding, Severity, rule, run_rules

__all__ = [
    "FieldSpec",
    "ArtifactSchema",
    "ArtifactDocument",
    "SCHEMAS",
    "schema_for_tag",
    "schema_for_path",
    "load_artifact",
    "validate_artifact",
    "lint_artifacts",
    "validate_fields",
]


@dataclass(frozen=True)
class FieldSpec:
    """One field of a registered artifact format."""

    name: str
    #: Accepted python types after JSON decoding. ``bool`` is never
    #: accepted implicitly for numeric specs (it subclasses ``int``).
    types: tuple[type, ...]
    required: bool = True
    nullable: bool = False

    def accepts(self, value: object) -> bool:
        if value is None:
            return self.nullable
        if isinstance(value, bool) and bool not in self.types:
            return False
        return isinstance(value, self.types)

    def type_names(self) -> str:
        names = "/".join(t.__name__ for t in self.types)
        return names + ("/null" if self.nullable else "")


@dataclass(frozen=True)
class ArtifactSchema:
    """A versioned on-disk format the pipeline emits."""

    tag: str
    #: "json" (one document), "jsonl" (every line tagged), or
    #: "journal" (tagged header line, untagged entry lines).
    kind: str
    description: str
    fields: tuple[FieldSpec, ...] = ()
    #: For journals: specs of the entry lines after the header.
    entry_fields: tuple[FieldSpec, ...] = ()
    #: Filenames that identify a tagless format (``meta.json``).
    filename_hints: tuple[str, ...] = ()
    #: True when the format predates schema tags and carries none.
    tagless: bool = False

    def field_names(self) -> set[str]:
        return {f.name for f in self.fields}


def _f(name, types, required=True, nullable=False) -> FieldSpec:
    if not isinstance(types, tuple):
        types = (types,)
    return FieldSpec(name, types, required=required, nullable=nullable)


#: Every registered artifact format, by schema tag.
SCHEMAS: dict[str, ArtifactSchema] = {
    s.tag: s
    for s in (
        ArtifactSchema(
            tag="repro-manifest/1",
            kind="json",
            description="campaign provenance sidecar (manifest.json)",
            fields=(
                _f("schema", str),
                _f("kernel", str),
                _f("arch", str),
                _f("tag", str, nullable=True),
                _f("seed", int, nullable=True),
                _f("n_runs", int),
                _f("config", dict),
                _f("timings", dict),
                _f("metrics", dict),
                _f("checksums", dict, required=False),
                _f("git_rev", str, required=False, nullable=True),
                _f("python", str),
                _f("created_unix", (int, float)),
            ),
        ),
        ArtifactSchema(
            tag="repro-events/1",
            kind="jsonl",
            description="structured event log (JSONL sink)",
            fields=(
                _f("schema", str),
                _f("kind", str),
                _f("t_s", (int, float)),
                _f("seq", int),
                _f("pid", int, required=False),
                _f("span_id", int, required=False, nullable=True),
                _f("fields", dict),
            ),
        ),
        ArtifactSchema(
            tag="repro-checkpoint/1",
            kind="journal",
            description="campaign checkpoint journal",
            fields=(
                _f("schema", str),
                _f("fingerprint", dict),
            ),
            entry_fields=(
                _f("index", int),
                _f("records", list, required=False),
                _f("quarantined", dict, required=False),
            ),
        ),
        ArtifactSchema(
            tag="repro-bench/1",
            kind="json",
            description="bench report (BENCH_core.json baseline)",
            fields=(
                _f("schema", str),
                _f("quick", bool, required=False),
                _f("python", str, required=False),
                _f("numpy", str, required=False),
                _f("results", list),
            ),
        ),
        ArtifactSchema(
            tag="repro-bench-history/1",
            kind="jsonl",
            description="bench history journal (benchmarks/history.jsonl)",
            fields=(
                _f("schema", str),
                _f("provenance", dict),
                _f("bench", dict),
            ),
        ),
        ArtifactSchema(
            tag="repro-campaign-meta/1",
            kind="json",
            description="stored-campaign metadata (meta.json; tagless)",
            fields=(
                _f("kernel", str),
                _f("arch", str),
                _f("family", str),
                _f("tag", str, nullable=True),
                _f("n_runs", int),
                _f("counters", list),
                _f("characteristics", list),
                _f("machine_metrics", list),
            ),
            filename_hints=("meta.json",),
            tagless=True,
        ),
        ArtifactSchema(
            tag="repro-fit/1",
            kind="json",
            description="servable fit artifact (registry fit.json)",
            fields=(
                _f("schema", str),
                _f("kernel", str),
                _f("arch", str),
                _f("tag", str, nullable=True),
                _f("response", str),
                _f("feature_names", list),
                _f("source", dict),
                _f("forest", dict),
            ),
        ),
        ArtifactSchema(
            tag="repro-fit-index/1",
            kind="json",
            description="fit registry version index (index.json)",
            fields=(
                _f("schema", str),
                _f("versions", list),
            ),
        ),
        ArtifactSchema(
            tag="repro-repo/1",
            kind="json",
            description="repository layout marker (repo.json)",
            fields=(
                _f("schema", str),
                _f("layout", int),
            ),
        ),
        ArtifactSchema(
            tag="repro-shard/1",
            kind="json",
            description="per-bucket shard manifest (shard.json)",
            fields=(
                _f("schema", str),
                _f("campaigns", dict),
            ),
        ),
        ArtifactSchema(
            tag="repro-matrix/1",
            kind="json",
            description="columnar counter-matrix index header (matrix.json)",
            fields=(
                _f("schema", str),
                _f("n_runs", int),
                _f("counters", list),
                _f("characteristics", list),
                _f("machine_metrics", list),
                _f("dtype", str),
                _f("power_missing", int),
                _f("source_sha256", str),
                _f("payload_sha256", str),
            ),
        ),
        ArtifactSchema(
            tag="repro-forest-state/1",
            kind="json",
            description="incremental-fit forest state (refit checkpoint)",
            fields=(
                _f("schema", str),
                _f("seed", int),
                _f("spawned", int),
                _f("config", dict),
                _f("n_features", int),
                _f("feature_names", list),
                _f("generations", list),
                _f("prefix_sha256", str),
                _f("trees", list),
            ),
        ),
        ArtifactSchema(
            tag="repro-telemetry/1",
            kind="jsonl",
            description="rotating telemetry snapshot journal",
            fields=(
                _f("schema", str),
                _f("seq", int),
                _f("source", str),
                _f("elapsed_s", (int, float)),
                _f("counters", dict),
                _f("gauges", dict),
                _f("timers", dict),
                _f("provenance", dict, required=False),
                _f("breakers", dict, required=False),
                _f("server", dict, required=False),
                _f("progress", dict, required=False),
            ),
        ),
        ArtifactSchema(
            tag="repro-flightrec/1",
            kind="json",
            description="flight-recorder ring dump (post-mortem tail)",
            fields=(
                _f("schema", str),
                _f("reason", str),
                _f("dump_count", int),
                _f("capacity", int),
                _f("recorded", int),
                _f("dropped", int),
                _f("provenance", dict),
                _f("events", list),
            ),
        ),
        ArtifactSchema(
            tag="repro-serve-health/1",
            kind="json",
            description="prediction-server readiness document (ping)",
            fields=(
                _f("schema", str),
                _f("ok", bool),
                _f("status", str),
                _f("registry_digest", str, nullable=True),
                _f("breakers", dict),
                _f("inflight", int),
                _f("requests_served", int),
            ),
        ),
    )
}


def schema_for_tag(tag: str) -> ArtifactSchema | None:
    return SCHEMAS.get(tag)


def schema_for_path(path: str | Path) -> ArtifactSchema | None:
    """The registered tagless format a filename identifies, if any."""
    name = Path(path).name
    for schema in SCHEMAS.values():
        if name in schema.filename_hints:
            return schema
    return None


@dataclass
class ArtifactDocument:
    """One artifact parsed (as far as possible) for validation.

    ``records`` holds ``(lineno, payload)`` pairs — a single pair at
    line 1 for plain JSON documents, one per line for JSONL/journals.
    Parsing never raises; failures land in ``parse_error`` /
    ``torn_tail`` for the rules to report.
    """

    path: str
    schema: ArtifactSchema | None = None
    tag: str | None = None
    records: list[tuple[int, dict]] = field(default_factory=list)
    #: The JSONL line that stopped parsing, if it was the journal tail
    #: (crash-tolerant readers discard it by contract).
    torn_tail: int | None = None
    #: Parse failure anywhere else: ``(lineno, message)``.
    parse_error: tuple[int, str] | None = None


def load_artifact(path: str | Path) -> ArtifactDocument:
    """Parse an artifact file into an :class:`ArtifactDocument`.

    Format detection: a ``.jsonl`` suffix (or >1 JSON line) means a
    line-oriented journal, otherwise one JSON document; the schema
    comes from the first line's tag, falling back to filename hints
    for registered tagless formats.
    """
    path = Path(path)
    doc = ArtifactDocument(path=str(path))
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        doc.parse_error = (0, f"unreadable: {exc}")
        return doc

    lines = text.splitlines()
    jsonl = path.suffix == ".jsonl" or (
        len([ln for ln in lines if ln.strip()]) > 1
        and all(ln.lstrip()[:1] in ("{", "") for ln in lines)
    )
    if not jsonl:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            doc.parse_error = (exc.lineno, f"not valid JSON: {exc.msg}")
            return doc
        if not isinstance(data, dict):
            doc.parse_error = (1, "top-level JSON value is not an object")
            return doc
        doc.records = [(1, data)]
        doc.tag = data.get("schema")
    else:
        payloads: list[tuple[int, dict]] = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                rest = any(ln.strip() for ln in lines[lineno:])
                if rest:
                    doc.parse_error = (lineno, f"not valid JSON: {exc.msg}")
                else:
                    doc.torn_tail = lineno
                break
            if not isinstance(data, dict):
                doc.parse_error = (lineno, "line is not a JSON object")
                break
            payloads.append((lineno, data))
        doc.records = payloads
        if payloads:
            doc.tag = payloads[0][1].get("schema")

    if doc.tag is not None:
        doc.schema = schema_for_tag(doc.tag)
    if doc.schema is None:
        doc.schema = schema_for_path(path)
    return doc


# ---------------------------------------------------------------------------
# rules


@rule("BF601", Severity.ERROR, "artifact",
      "every artifact declares a registered schema tag")
def check_schema_tag(r, doc: ArtifactDocument):
    if doc.parse_error is not None and not doc.records:
        return  # BF604 owns unparseable documents
    if doc.schema is None:
        if doc.tag is None:
            yield r.finding(
                "no schema tag and the filename matches no registered "
                "tagless format; readers cannot tell what this is",
                subject=f"{doc.path}:1",
            )
        else:
            yield r.finding(
                f"unknown schema tag {doc.tag!r}; registered tags: "
                f"{sorted(SCHEMAS)}",
                subject=f"{doc.path}:1", tag=doc.tag,
            )
        return
    if not doc.schema.tagless:
        for lineno, payload in _tagged_records(doc):
            tag = payload.get("schema")
            if tag != doc.schema.tag:
                yield r.finding(
                    f"schema tag {tag!r} does not match the document's "
                    f"declared {doc.schema.tag!r}",
                    subject=f"{doc.path}:{lineno}", tag=tag,
                )


def _tagged_records(doc: ArtifactDocument) -> list[tuple[int, dict]]:
    """The records that must carry the schema tag (all but journal
    entry lines)."""
    if doc.schema is not None and doc.schema.kind == "journal":
        return doc.records[:1]
    return doc.records


def _spec_records(
    doc: ArtifactDocument,
) -> list[tuple[int, dict, tuple[FieldSpec, ...]]]:
    """Every record paired with the field specs that govern it."""
    if doc.schema is None:
        return []
    out = []
    for i, (lineno, payload) in enumerate(doc.records):
        if doc.schema.kind == "journal" and i > 0:
            out.append((lineno, payload, doc.schema.entry_fields))
        else:
            out.append((lineno, payload, doc.schema.fields))
    return out


@rule("BF602", Severity.ERROR, "artifact",
      "every required field of the declared schema is present")
def check_required_fields(r, doc: ArtifactDocument):
    for lineno, payload, specs in _spec_records(doc):
        missing = [
            s.name for s in specs if s.required and s.name not in payload
        ]
        if missing:
            yield r.finding(
                f"missing required field(s) {missing} of "
                f"{doc.schema.tag}",
                subject=f"{doc.path}:{lineno}", missing=missing,
                schema=doc.schema.tag,
            )


@rule("BF603", Severity.WARNING, "artifact",
      "fields match their declared types and no unknown fields drift in")
def check_field_drift(r, doc: ArtifactDocument):
    for lineno, payload, specs in _spec_records(doc):
        by_name = {s.name: s for s in specs}
        unknown = sorted(set(payload) - set(by_name))
        if unknown:
            yield r.finding(
                f"unrecognized field(s) {unknown} for {doc.schema.tag} "
                f"— renamed or future fields; readers will silently "
                f"ignore them",
                subject=f"{doc.path}:{lineno}", unknown=unknown,
                schema=doc.schema.tag,
            )
        for name, spec in by_name.items():
            if name in payload and not spec.accepts(payload[name]):
                yield r.finding(
                    f"field {name!r} of {doc.schema.tag} is "
                    f"{type(payload[name]).__name__}, expected "
                    f"{spec.type_names()}",
                    subject=f"{doc.path}:{lineno}",
                    severity=Severity.ERROR, field=name,
                    schema=doc.schema.tag,
                )


@rule("BF604", Severity.ERROR, "artifact",
      "artifacts parse; only a torn trailing journal line is tolerated")
def check_parse(r, doc: ArtifactDocument):
    if doc.parse_error is not None:
        lineno, msg = doc.parse_error
        yield r.finding(msg, subject=f"{doc.path}:{lineno}")
    if doc.torn_tail is not None:
        yield r.finding(
            "torn trailing line (crash mid-append); readers discard it, "
            "but the interrupted write should be investigated",
            subject=f"{doc.path}:{doc.torn_tail}",
            severity=Severity.WARNING,
        )


@rule("BF605", Severity.ERROR, "artifact",
      "journal entries pair an index with records or a quarantine")
def check_journal_structure(r, doc: ArtifactDocument):
    if doc.schema is None or doc.schema.kind != "journal":
        return
    if not doc.records:
        yield r.finding(
            "journal has no header line",
            subject=f"{doc.path}:1",
        )
        return
    for lineno, payload in doc.records[1:]:
        has_body = ("records" in payload) != ("quarantined" in payload)
        if not has_body:
            yield r.finding(
                "entry must carry exactly one of 'records' or "
                "'quarantined'",
                subject=f"{doc.path}:{lineno}",
            )


# ---------------------------------------------------------------------------
# entry points


def validate_artifact(path: str | Path) -> list[Finding]:
    """Every BF6xx rule against one artifact file."""
    return run_rules("artifact", load_artifact(path))


def lint_artifacts(paths: Sequence[str | Path]) -> list[Finding]:
    """Validate a batch of artifact files."""
    findings: list[Finding] = []
    for path in paths:
        findings.extend(validate_artifact(path))
    return findings


def validate_fields(
    payload: dict, tag: str, *, entry: bool = False
) -> list[str]:
    """Problems with one in-memory payload against a registered schema.

    The lightweight hook for readers (:func:`repro.obs.log.read_events`,
    :func:`repro.obs.history.read_history`,
    :meth:`~repro.obs.manifest.Manifest.from_json`): returns human
    strings naming the violated rule, empty when the payload conforms.
    """
    schema = SCHEMAS.get(tag)
    if schema is None:
        return [f"BF601: unknown schema tag {tag!r}"]
    specs = schema.entry_fields if entry else schema.fields
    problems: list[str] = []
    missing = [
        s.name for s in specs if s.required and s.name not in payload
    ]
    if missing:
        problems.append(
            f"BF602: missing required field(s) {missing} of {tag}"
        )
    for spec in specs:
        if spec.name in payload and not spec.accepts(payload[spec.name]):
            problems.append(
                f"BF603: field {spec.name!r} is "
                f"{type(payload[spec.name]).__name__}, expected "
                f"{spec.type_names()}"
            )
    return problems
