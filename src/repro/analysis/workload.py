"""Workload-model and counter-vector invariants (rules BF101–BF125).

Two rule blocks:

* **workload** rules (BF10x) validate one :class:`KernelWorkload`
  against the architecture it is about to launch on — geometry, access
  pattern shapes, instruction-mix arithmetic, and the per-SM resource
  budgets of the paper's Table 2 (via the occupancy calculator).
* **counters** rules (BF12x) validate a finalized counter vector —
  cross-counter sanity such as ``transactions >= requests`` (a warp
  request always costs at least one transaction), issue/execute
  ordering, and family membership (the "``l1_global_load_hit`` leaking
  into a Kepler run" failure mode).

The counter rules are what :class:`~repro.profiling.profiler.Profiler`
runs in sanitizer mode *before* simulated measurement error is applied:
they check the simulator's physics, not the (deliberately noisy)
measurement model.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.counters import CATALOGUE, EXCLUSIVE_FAMILY_COUNTERS
from repro.gpusim.occupancy import occupancy
from repro.gpusim.workload import KernelWorkload

from .findings import Severity, rule

__all__ = ["lint_workload", "lint_counters"]

#: Slack for float comparisons between exactly-derived quantities.
_RTOL = 1e-6


def _is_finite_number(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False


# ---------------------------------------------------------------------------
# workload rules: check(rule, wl: KernelWorkload, arch: GPUArchitecture)
# ---------------------------------------------------------------------------


@rule("BF101", Severity.ERROR, "workload",
      "launch geometry is positive and within the block-size limit")
def check_geometry(r, wl: KernelWorkload, arch: GPUArchitecture):
    if wl.grid_blocks < 1:
        yield r.finding(f"grid_blocks={wl.grid_blocks} must be >= 1",
                        subject=wl.name)
    if wl.threads_per_block < 1:
        yield r.finding(
            f"threads_per_block={wl.threads_per_block} must be >= 1",
            subject=wl.name,
        )
    elif wl.threads_per_block > arch.max_threads_per_block:
        yield r.finding(
            f"threads_per_block={wl.threads_per_block} exceeds "
            f"{arch.name}'s limit of {arch.max_threads_per_block}",
            subject=wl.name, limit=arch.max_threads_per_block,
        )


@rule("BF102", Severity.ERROR, "workload",
      "global access patterns are well-shaped (kind, lanes, stride, "
      "word size)")
def check_global_shapes(r, wl: KernelWorkload, arch: GPUArchitecture):
    for i, a in enumerate(wl.global_accesses):
        where = f"{wl.name}.global[{i}]"
        if a.kind not in ("load", "store"):
            yield r.finding(f"kind={a.kind!r} invalid", subject=where)
        if a.requests < 0:
            yield r.finding(f"requests={a.requests} negative", subject=where)
        if not 1 <= a.active_lanes <= arch.warp_size:
            yield r.finding(
                f"active_lanes={a.active_lanes} outside "
                f"[1, {arch.warp_size}]", subject=where,
            )
        if a.stride_words < 0:
            yield r.finding(f"stride_words={a.stride_words} negative",
                            subject=where)
        if a.word_bytes not in (1, 2, 4, 8, 16):
            yield r.finding(
                f"word_bytes={a.word_bytes} not a power of two <= 16",
                subject=where,
            )


@rule("BF103", Severity.ERROR, "workload",
      "cache-hit fractions lie in [0, 1] and footprints are non-negative")
def check_hit_fractions(r, wl: KernelWorkload, arch: GPUArchitecture):
    for i, a in enumerate(wl.global_accesses):
        where = f"{wl.name}.global[{i}]"
        for label, frac in (("l1_hit_fraction", a.l1_hit_fraction),
                            ("l2_hit_fraction", a.l2_hit_fraction)):
            if frac is None:
                continue
            if not _is_finite_number(frac) or not 0.0 <= frac <= 1.0:
                yield r.finding(f"{label}={frac} outside [0, 1]",
                                subject=where)
        if a.unique_bytes is not None and a.unique_bytes < 0:
            yield r.finding(f"unique_bytes={a.unique_bytes} negative",
                            subject=where)


@rule("BF104", Severity.ERROR, "workload",
      "sampled address traces have shape (n, 32)")
def check_address_traces(r, wl: KernelWorkload, arch: GPUArchitecture):
    for i, a in enumerate(wl.global_accesses):
        if a.addresses is None:
            continue
        where = f"{wl.name}.global[{i}]"
        trace = np.asarray(a.addresses)
        if trace.ndim != 2 or trace.shape[1] != arch.warp_size:
            yield r.finding(
                f"addresses shape {trace.shape} is not "
                f"(n, {arch.warp_size})", subject=where,
            )
        elif trace.size and trace.min() < -1:
            yield r.finding(
                "addresses below -1 (the inactive-lane marker)",
                subject=where,
            )


@rule("BF105", Severity.ERROR, "workload",
      "shared access patterns have valid kinds and conflict degrees "
      "within the bank count")
def check_shared_shapes(r, wl: KernelWorkload, arch: GPUArchitecture):
    for i, s in enumerate(wl.shared_accesses):
        where = f"{wl.name}.shared[{i}]"
        if s.kind not in ("load", "store"):
            yield r.finding(f"kind={s.kind!r} invalid", subject=where)
        if s.requests < 0:
            yield r.finding(f"requests={s.requests} negative", subject=where)
        if s.word_bytes not in (1, 2, 4, 8, 16):
            yield r.finding(
                f"word_bytes={s.word_bytes} not a power of two <= 16",
                subject=where,
            )
        if not _is_finite_number(s.conflict_degree) or not (
            1.0 <= s.conflict_degree <= arch.shared_banks
        ):
            yield r.finding(
                f"conflict_degree={s.conflict_degree} outside "
                f"[1, {arch.shared_banks}] (a {arch.shared_banks}-bank "
                f"SM cannot serialize further)", subject=where,
            )


@rule("BF106", Severity.ERROR, "workload",
      "instruction mix is arithmetically consistent")
def check_instruction_mix(r, wl: KernelWorkload, arch: GPUArchitecture):
    counts = {
        "arithmetic_instructions": wl.arithmetic_instructions,
        "fma_instructions": wl.fma_instructions,
        "branches": wl.branches,
        "divergent_branches": wl.divergent_branches,
        "other_instructions": wl.other_instructions,
    }
    for label, count in counts.items():
        if count < 0:
            yield r.finding(f"{label}={count} negative", subject=wl.name)
    if wl.divergent_branches > wl.branches:
        yield r.finding(
            f"divergent_branches={wl.divergent_branches} exceeds "
            f"branches={wl.branches}", subject=wl.name,
        )
    if wl.fma_instructions > wl.arithmetic_instructions:
        yield r.finding(
            f"fma_instructions={wl.fma_instructions} exceeds "
            f"arithmetic_instructions={wl.arithmetic_instructions} "
            "(FMAs are a subset of arithmetic)", subject=wl.name,
        )
    if not (
        _is_finite_number(wl.avg_active_threads)
        and 0.0 < wl.avg_active_threads <= arch.warp_size
    ):
        yield r.finding(
            f"avg_active_threads={wl.avg_active_threads} outside "
            f"(0, {arch.warp_size}]", subject=wl.name,
        )


@rule("BF107", Severity.ERROR, "workload",
      "per-block resources fit the architecture's Table 2 budgets and "
      "the launch achieves a legal occupancy")
def check_resources(r, wl: KernelWorkload, arch: GPUArchitecture):
    if wl.regs_per_thread < 0:
        yield r.finding(f"regs_per_thread={wl.regs_per_thread} negative",
                        subject=wl.name)
        return
    if wl.shared_mem_per_block < 0:
        yield r.finding(
            f"shared_mem_per_block={wl.shared_mem_per_block} negative",
            subject=wl.name,
        )
        return
    if wl.regs_per_thread > arch.max_registers_per_thread:
        yield r.finding(
            f"regs_per_thread={wl.regs_per_thread} exceeds "
            f"{arch.name}'s limit of {arch.max_registers_per_thread}",
            subject=wl.name, limit=arch.max_registers_per_thread,
        )
        return
    if wl.shared_mem_per_block > arch.shared_mem_per_sm:
        yield r.finding(
            f"shared_mem_per_block={wl.shared_mem_per_block} exceeds "
            f"{arch.name}'s {arch.shared_mem_per_sm} B per SM",
            subject=wl.name, limit=arch.shared_mem_per_sm,
        )
        return
    if not 1 <= wl.threads_per_block <= arch.max_threads_per_block:
        return  # BF101's finding; occupancy() would raise on this input
    try:
        occ = occupancy(arch, wl.threads_per_block, wl.regs_per_thread,
                        wl.shared_mem_per_block)
    except ValueError as exc:
        yield r.finding(f"launch cannot run: {exc}", subject=wl.name)
        return
    if occ.active_warps_per_sm > arch.max_warps_per_sm:
        yield r.finding(
            f"occupancy result {occ.active_warps_per_sm} warps/SM "
            f"exceeds the hardware limit {arch.max_warps_per_sm}",
            subject=wl.name,
        )
    if not 0.0 < occ.theoretical_occupancy <= 1.0 + _RTOL:
        yield r.finding(
            f"theoretical occupancy {occ.theoretical_occupancy:.3f} "
            f"outside (0, 1]", subject=wl.name,
        )


@rule("BF108", Severity.ERROR, "workload",
      "a launch issues at least one instruction (sum of events > 0)")
def check_nonempty(r, wl: KernelWorkload, arch: GPUArchitecture):
    try:
        executed = wl.executed_instructions
    except TypeError:
        yield r.finding("instruction counts are not numeric", subject=wl.name)
        return
    if executed <= 0:
        yield r.finding(
            "workload executes zero instructions — every counter of "
            "this launch would be 0", subject=wl.name,
        )


@rule("BF109", Severity.ERROR, "workload",
      "latency-model knobs are finite and in range")
def check_latency_knobs(r, wl: KernelWorkload, arch: GPUArchitecture):
    if not _is_finite_number(wl.memory_ilp) or wl.memory_ilp < 1.0:
        yield r.finding(f"memory_ilp={wl.memory_ilp} must be >= 1",
                        subject=wl.name)
    if (not _is_finite_number(wl.critical_path_cycles)
            or wl.critical_path_cycles < 0.0):
        yield r.finding(
            f"critical_path_cycles={wl.critical_path_cycles} must be >= 0",
            subject=wl.name,
        )


# ---------------------------------------------------------------------------
# counter-vector rules: check(rule, values: Mapping[str, float], family: str)
# ---------------------------------------------------------------------------


@rule("BF120", Severity.ERROR, "counters",
      "transaction counts respect the coalescing minimum "
      "(>= one transaction per warp request)")
def check_transaction_floor(r, values: Mapping[str, float], family: str):
    floors = [("global_store_transaction", "gst_request")]
    if family == "fermi":
        # Every global load touches at least one L1 line: hits + misses
        # can never undercount the requests that produced them.
        floors.append(("l1_global_load_hit+l1_global_load_miss",
                       "gld_request"))
    for trans_expr, req_name in floors:
        req = values.get(req_name)
        if req is None or req <= 0:
            continue
        parts = [values.get(p) for p in trans_expr.split("+")]
        if any(p is None for p in parts):
            continue
        trans = sum(parts)
        if trans < req * (1.0 - _RTOL):
            yield r.finding(
                f"{trans_expr}={trans:g} below the coalescing floor of "
                f"{req_name}={req:g} (a warp request is at least one "
                f"transaction)", subject=trans_expr,
            )


@rule("BF121", Severity.ERROR, "counters",
      "issued instruction count is at least the executed count")
def check_issue_order(r, values: Mapping[str, float], family: str):
    issued, executed = values.get("inst_issued"), values.get("inst_executed")
    if issued is None or executed is None:
        return
    if issued < executed * (1.0 - _RTOL):
        yield r.finding(
            f"inst_issued={issued:g} < inst_executed={executed:g} "
            "(replays can only add issue slots)", subject="inst_issued",
        )


@rule("BF122", Severity.ERROR, "counters",
      "divergent branches do not exceed total branches")
def check_divergence(r, values: Mapping[str, float], family: str):
    branch, divergent = values.get("branch"), values.get("divergent_branch")
    if branch is None or divergent is None:
        return
    if divergent > branch * (1.0 + _RTOL):
        yield r.finding(
            f"divergent_branch={divergent:g} exceeds branch={branch:g}",
            subject="divergent_branch",
        )


@rule("BF123", Severity.ERROR, "counters",
      "all counter values are finite and non-negative")
def check_value_range(r, values: Mapping[str, float], family: str):
    for name, value in values.items():
        if not _is_finite_number(value):
            yield r.finding(f"value {value!r} is not a finite number",
                            subject=name)
        elif value < 0:
            yield r.finding(f"value {value:g} is negative", subject=name)


@rule("BF124", Severity.ERROR, "counters",
      "every counter in the vector exists and is available on the "
      "run's architecture family")
def check_family_membership(r, values: Mapping[str, float], family: str):
    for name in values:
        spec = CATALOGUE.get(name)
        if spec is None:
            yield r.finding("counter not in the catalogue", subject=name)
        elif not spec.available_on(family):
            hint = ""
            if EXCLUSIVE_FAMILY_COUNTERS.get(name, family) != family:
                hint = (f" — {name} is "
                        f"{EXCLUSIVE_FAMILY_COUNTERS[name]}-only")
            yield r.finding(
                f"counter not available on family {family!r}{hint}",
                subject=name, family=family,
            )


@rule("BF125", Severity.WARNING, "counters",
      "ratio-style metrics stay within their physical ranges")
def check_metric_ranges(r, values: Mapping[str, float], family: str):
    bounded = {
        "achieved_occupancy": 1.0,
        "warp_execution_efficiency": 100.0,
        "shared_efficiency": 100.0,
        "sm_efficiency": 100.0,
        "issue_slot_utilization": 100.0,
        "ldst_fu_utilization": 10.0,
    }
    for name, upper in bounded.items():
        value = values.get(name)
        if value is not None and value > upper * (1.0 + 1e-3):
            yield r.finding(
                f"{name}={value:g} exceeds its ceiling of {upper:g}",
                subject=name, ceiling=upper,
            )


# ---------------------------------------------------------------------------


def lint_workload(wl: KernelWorkload, arch: GPUArchitecture):
    """Run all workload rules on one launch/arch pair."""
    from .findings import run_rules

    return run_rules("workload", wl, arch)


def lint_counters(values: Mapping[str, float], family: str):
    """Run all cross-counter sanity rules on one finalized vector."""
    from .findings import run_rules

    return run_rules("counters", values, family)
