"""Whole-tree lint orchestration.

:func:`lint_tree` is what ``repro lint`` (and CI) runs: the full rule
set over everything the shipped package declares —

1. the counter catalogue (BF0xx),
2. every built-in GPU architecture description (BF2xx),
3. the workload models every registered kernel emits for the first
   problem of its paper sweep, on both GPU families (BF10x),
4. one deterministic simulated counter vector per kernel/arch pair
   (BF12x) — the same checks the profiler's sanitizer mode applies
   per launch,
5. the package source tree (BF3xx).

6. the determinism sanitizer (BF4xx) over every module reachable from
   the pipeline entry points, minus the committed allowlist.

Findings come back sorted most-severe-first; :func:`summarize` renders
the text report and :func:`as_json` the machine-readable one (findings
re-sorted by (rule id, file, line) so CI diffs are stable).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.gpusim.arch import GTX480, GTX580, K20M, GPUArchitecture

from .arch import lint_arch
from .catalogue import lint_catalogue
from .determinism import lint_determinism
from .findings import Finding, Severity, all_rules, max_severity, run_rules
from .source import lint_source_tree
from .workload import lint_counters, lint_workload

__all__ = [
    "DEFAULT_ARCHS",
    "lint_tree",
    "lint_kernel_launches",
    "summarize",
    "as_json",
    "exit_code",
    "rule_table",
]

DEFAULT_ARCHS: tuple[GPUArchitecture, ...] = (GTX480, GTX580, K20M)


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).parent


def lint_kernel_launches(
    archs: Sequence[GPUArchitecture] = DEFAULT_ARCHS,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every registered kernel's workload models and the counter
    vectors they produce, on each GPU architecture."""
    from repro.gpusim.noise import Perturbation
    from repro.gpusim.simulator import GPUSimulator, finalize_counters, sum_raw
    from repro.kernels import kernel_registry

    findings: list[Finding] = []
    for arch in archs:
        sim = GPUSimulator(arch)
        for name, kernel in sorted(kernel_registry().items()):
            problem = kernel.default_sweep()[0]
            try:
                workloads = kernel.workloads(problem, arch)
            except (AttributeError, ValueError):
                continue  # kernel does not model this architecture class
            for wl in workloads:
                findings.extend(
                    _tag(run_rules("workload", wl, arch, select=select),
                         kernel=name, arch=arch.name)
                )
            profiles = [sim.launch(wl, Perturbation.none()) for wl in workloads]
            values, _ = finalize_counters(arch, sum_raw(profiles))
            findings.extend(
                _tag(run_rules("counters", dict(values), arch.family,
                               select=select),
                     kernel=name, arch=arch.name)
            )
    return findings


def _tag(findings: list[Finding], **context) -> list[Finding]:
    return [
        Finding(
            rule=f.rule, severity=f.severity, message=f.message,
            subject=f.subject, context={**f.context, **context},
        )
        for f in findings
    ]


def lint_tree(
    source_root: str | Path | None = None,
    archs: Sequence[GPUArchitecture] = DEFAULT_ARCHS,
    select: Iterable[str] | None = None,
    include_launches: bool = True,
    include_source: bool = True,
) -> list[Finding]:
    """Run the full rule set over the shipped package."""
    from repro.gpusim.counters import CATALOGUE

    findings: list[Finding] = list(run_rules("catalogue", CATALOGUE,
                                             select=select))
    for arch in archs:
        findings.extend(run_rules("arch", arch, select=select))
    if include_launches:
        findings.extend(lint_kernel_launches(archs, select=select))
    if include_source:
        root = _package_root() if source_root is None else Path(source_root)
        source_findings = lint_source_tree(root) + lint_determinism(root)
        if select is not None:
            source_findings = [
                f for f in source_findings
                if any(f.rule.startswith(s) for s in select)
            ]
        findings.extend(source_findings)
    findings.sort(key=lambda f: (-f.severity, f.rule, f.subject))
    return findings


def summarize(findings: Sequence[Finding], n_rules: int | None = None) -> str:
    """Human-readable lint report."""
    n_rules = len(all_rules()) if n_rules is None else n_rules
    lines = [f.format() for f in findings]
    counts = {s: sum(1 for f in findings if f.severity == s) for s in Severity}
    tally = ", ".join(
        f"{counts[s]} {s.name.lower()}{'s' if counts[s] != 1 else ''}"
        for s in sorted(Severity, reverse=True)
        if counts[s]
    )
    if findings:
        lines.append("")
        lines.append(f"{len(findings)} findings ({tally}) from {n_rules} rules")
    else:
        lines.append(f"clean: 0 findings from {n_rules} rules")
    return "\n".join(lines)


_SUBJECT_LINE = re.compile(r"^(?P<file>.*):(?P<line>\d+)$")


def _sort_key(finding: Finding) -> tuple[str, str, int]:
    """(rule id, file, line) — the JSON report's stable order.

    Subjects that are not ``path:line`` locations (counter names,
    architectures) sort as line 0 of themselves, so every finding has a
    total order and CI diffs never churn.
    """
    m = _SUBJECT_LINE.match(finding.subject)
    if m:
        return finding.rule, m.group("file"), int(m.group("line"))
    return finding.rule, finding.subject, 0


def as_json(findings: Sequence[Finding], n_rules: int | None = None) -> str:
    """Machine-readable lint report (stable schema for CI consumers).

    Findings are re-sorted by (rule id, file, line) — independent of
    discovery order — and each carries its rule metadata (severity,
    family, doc URL), so two runs over the same tree produce the same
    bytes and a CI diff shows exactly what changed.
    """
    worst = max_severity(findings)
    payload = {
        "findings": [f.as_dict() for f in sorted(findings, key=_sort_key)],
        "counts": {
            s.name.lower(): sum(1 for f in findings if f.severity == s)
            for s in Severity
        },
        "max_severity": worst.name.lower() if worst is not None else None,
        "rules_run": len(all_rules()) if n_rules is None else n_rules,
    }
    return json.dumps(payload, indent=2, default=str, sort_keys=True)


def exit_code(findings: Sequence[Finding], fail_on: Severity) -> int:
    """1 when any finding is at or above the threshold, else 0.

    The boundary is inclusive: ``--fail-on warning`` fails on WARNING
    *and* ERROR findings (pinned by tests/analysis/test_runner_cli.py).
    """
    worst = max_severity(findings)
    return 1 if worst is not None and worst >= fail_on else 0


def rule_table() -> list[tuple[str, str, str, str]]:
    """(id, severity, domain, summary) rows for docs and --list-rules."""
    return [
        (r.id, r.severity.name.lower(), r.domain, r.summary)
        for r in all_rules()
    ]
