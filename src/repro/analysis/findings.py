"""Shared finding/rule framework for the static-analysis subsystem.

Every check the linter performs is a registered :class:`Rule` with a
stable identifier (``BF001``...), a default :class:`Severity` and a
*domain* that fixes its check signature:

===========  =============================================  ==================
domain       subject                                        check signature
===========  =============================================  ==================
catalogue    the counter catalogue                          ``check(catalogue)``
workload     one kernel launch on one architecture          ``check(wl, arch)``
arch         a :class:`~repro.gpusim.arch.GPUArchitecture`  ``check(arch)``
counters     a finalized counter vector                     ``check(values, family)``
source       one parsed module of the package               ``check(tree, path)``
===========  =============================================  ==================

Checks *yield or return* :class:`Finding` objects; they never raise on
bad input — raising is the sanitizer's job (:class:`InvariantViolation`
wraps the findings of a failed launch). Rules register themselves via
the :func:`rule` decorator at import time, which keeps the catalogue
introspectable (``repro lint --list-rules``, the docs table) and lets
tests drive single rules against corrupted fixtures.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "rule",
    "rules_for",
    "all_rules",
    "get_rule",
    "run_rules",
    "max_severity",
    "family_of",
    "doc_url_of",
    "InvariantViolation",
]


class Severity(enum.IntEnum):
    """Finding severity, ordered so comparisons mean "at least as bad"."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to the object (or source line) at fault."""

    rule: str
    severity: Severity
    message: str
    #: What the finding is about — a counter name, a kernel launch,
    #: an architecture, or a ``path:line`` source location.
    subject: str = ""
    #: Free-form structured context (values observed, limits exceeded).
    context: Mapping[str, object] = field(default_factory=dict)

    def format(self) -> str:
        loc = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity.name:7s} {self.rule}{loc} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "family": family_of(self.rule),
            "doc_url": doc_url_of(self.rule),
            "message": self.message,
            "subject": self.subject,
            "context": {k: v for k, v in self.context.items()},
        }


#: Rule-id block → (family name, owning domain, docs/analysis.md anchor).
#: Ids are grouped in stable blocks; registering an id whose prefix maps
#: to no family (or to a family of a different domain) is an error, so
#: the id space cannot silently fragment.
FAMILIES: dict[str, tuple[str, str, str]] = {
    "BF0": ("catalogue", "catalogue", "catalogue-rules-bf0xx"),
    "BF10": ("workload", "workload", "workload-rules-bf10x"),
    "BF12": ("counter-vector", "counters", "counter-vector-rules-bf12x"),
    "BF2": ("architecture", "arch", "architecture-rules-bf2xx"),
    "BF3": ("source", "source", "source-rules-bf3xx"),
    "BF4": ("determinism", "determinism", "determinism-rules-bf4xx"),
    "BF5": ("campaign-plan", "plan", "campaign-plan-rules-bf5xx"),
    "BF6": ("artifact-schema", "artifact", "artifact-schema-rules-bf6xx"),
}

#: Where the rule catalogue is documented (doc URLs are anchors into it).
DOCS_PATH = "docs/analysis.md"

_RULE_ID = re.compile(r"BF\d{3}")


def _family_entry(rule_id: str) -> tuple[str, str, str]:
    # Longest prefix wins: BF10x is workload, BF12x counter-vector.
    for width in (4, 3):
        entry = FAMILIES.get(rule_id[:width])
        if entry is not None:
            return entry
    raise ValueError(f"rule id {rule_id!r} belongs to no declared family")


def family_of(rule_id: str) -> str:
    """The declared family name of a rule id (``BF4xx`` -> determinism)."""
    return _family_entry(rule_id)[0]


def doc_url_of(rule_id: str) -> str:
    """Anchor into the rule-catalogue docs for a rule id."""
    return f"{DOCS_PATH}#{_family_entry(rule_id)[2]}"


@dataclass(frozen=True)
class Rule:
    """A registered invariant check."""

    id: str
    severity: Severity
    domain: str
    summary: str
    check: Callable[..., Iterable[Finding] | None]

    @property
    def family(self) -> str:
        return family_of(self.id)

    @property
    def doc_url(self) -> str:
        return doc_url_of(self.id)

    def finding(
        self, message: str, subject: str = "", severity: Severity | None = None,
        **context,
    ) -> Finding:
        """Build a finding attributed to this rule (at its default severity)."""
        return Finding(
            rule=self.id,
            severity=self.severity if severity is None else severity,
            message=message,
            subject=subject,
            context=context,
        )

    def run(self, *args) -> list[Finding]:
        result = self.check(self, *args)
        return [] if result is None else list(result)


_DOMAINS = (
    "catalogue", "workload", "arch", "counters", "source",
    "determinism", "plan", "artifact",
)
_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, severity: Severity, domain: str, summary: str):
    """Class-level decorator registering a check function as a rule.

    The decorated function receives the owning :class:`Rule` as its
    first argument (use ``rule.finding(...)`` to emit findings) followed
    by the domain's subject arguments.
    """
    if domain not in _DOMAINS:
        raise ValueError(f"unknown rule domain {domain!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    if not _RULE_ID.fullmatch(rule_id):
        raise ValueError(f"rule id {rule_id!r} does not match BF\\d{{3}}")
    family_name, family_domain, _ = _family_entry(rule_id)
    if family_domain != domain:
        raise ValueError(
            f"rule id {rule_id!r} sits in the {family_name!r} block, which "
            f"belongs to domain {family_domain!r}, not {domain!r}"
        )

    def register(check: Callable) -> Rule:
        registered = Rule(
            id=rule_id, severity=severity, domain=domain,
            summary=summary, check=check,
        )
        _REGISTRY[rule_id] = registered
        return registered

    return register


def rules_for(domain: str) -> list[Rule]:
    """All registered rules of one domain, in id order."""
    if domain not in _DOMAINS:
        raise ValueError(f"unknown rule domain {domain!r}")
    return sorted(
        (r for r in _REGISTRY.values() if r.domain == domain),
        key=lambda r: r.id,
    )


def all_rules() -> list[Rule]:
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}") from None


def run_rules(domain: str, *args, select: Iterable[str] | None = None) -> list[Finding]:
    """Run every rule of ``domain`` against one subject.

    ``select`` optionally restricts to rule ids (or id prefixes, so
    ``"BF1"`` selects the whole workload block).
    """
    findings: list[Finding] = []
    for r in rules_for(domain):
        if select is not None and not any(r.id.startswith(s) for s in select):
            continue
        findings.extend(r.run(*args))
    return findings


def max_severity(findings: Iterable[Finding]) -> Severity | None:
    worst: Severity | None = None
    for f in findings:
        if worst is None or f.severity > worst:
            worst = f.severity
    return worst


class InvariantViolation(RuntimeError):
    """A sanitized simulation hit ERROR-severity invariant findings.

    Raised by :class:`~repro.profiling.profiler.Profiler` in sanitizer
    mode; carries the structured findings so callers (and tests) can
    inspect exactly which rule fired on what.
    """

    def __init__(self, findings: Iterable[Finding], subject: str = "") -> None:
        self.findings: list[Finding] = list(findings)
        self.subject = subject
        head = "; ".join(f.format() for f in self.findings[:3])
        more = len(self.findings) - 3
        if more > 0:
            head += f" (+{more} more)"
        where = f" in {subject}" if subject else ""
        super().__init__(f"invariant violation{where}: {head}")

    def rules(self) -> list[str]:
        return sorted({f.rule for f in self.findings})

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)
