"""AST linter over the ``repro`` package source (rules BF301–BF303).

Complements the object-level validators with source-level checks that
catch classes of defects *before* anything runs:

* **BF301** — string-literal counter names that are not in the
  catalogue. Typos like ``counters["gld_requests"]`` otherwise surface
  as ``KeyError`` deep inside a campaign (or worse, silently miss a
  column in a hand-built list).
* **BF302** — unguarded divisions in derived-metric / efficiency code,
  where an empty launch turns into ``ZeroDivisionError`` or a NaN that
  poisons a whole feature matrix.
* **BF303** — float ``==`` / ``!=`` comparisons in simulator timing
  paths, which break under the noise model's perturbation factors.

All checks run on parsed module ASTs (``check(tree, path)``), so tests
can feed source snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.gpusim.counters import CATALOGUE

from .findings import Finding, Severity, rule, run_rules

__all__ = ["lint_source_file", "lint_source_tree", "parse_module"]

#: Variable / attribute names whose string subscripts are counter names.
_COUNTER_CONTAINERS = {"counters"}

#: Assignment targets whose list/tuple elements are counter names.
_COUNTER_LIST_SUFFIX = "COUNTERS"

#: Function-name fragments marking derived-metric / efficiency code
#: (the scope of the unguarded-division rule).
_METRIC_FUNCTION_MARKERS = (
    "finalize_counters", "efficien", "overhead", "utilization",
)

#: Modules whose comparisons constitute the simulator timing path.
_TIMING_PATH_MODULES = (
    "gpusim/timing.py", "gpusim/simulator.py", "gpusim/microsim.py",
    "gpusim/memory.py", "cpusim/simulator.py",
)


def _subscript_container_name(node: ast.Subscript) -> str | None:
    value = node.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


@rule("BF301", Severity.ERROR, "source",
      "string-literal counter names exist in the catalogue")
def check_counter_literals(r, tree: ast.AST, path: str):
    def unknown(name: str) -> bool:
        return isinstance(name, str) and name not in CATALOGUE

    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript):
            container = _subscript_container_name(node)
            if container not in _COUNTER_CONTAINERS:
                continue
            key = node.slice
            if isinstance(key, ast.Constant) and unknown(key.value):
                yield r.finding(
                    f"counter name {key.value!r} not in the catalogue",
                    subject=f"{path}:{key.lineno}", name=key.value,
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            named = [
                t.id for t in targets
                if isinstance(t, ast.Name) and t.id.endswith(_COUNTER_LIST_SUFFIX)
            ]
            if not named or not isinstance(node.value, (ast.List, ast.Tuple)):
                continue
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and unknown(element.value):
                    yield r.finding(
                        f"counter name {element.value!r} in {named[0]} not "
                        "in the catalogue",
                        subject=f"{path}:{element.lineno}", name=element.value,
                    )


def _is_guarded_division(div: ast.BinOp, ancestors: list[ast.AST]) -> bool:
    """A division counts as guarded when a conditional dominates it or
    the denominator cannot be zero by construction."""
    right = div.right
    if isinstance(right, ast.Constant) and right.value:
        return True
    # `x / max(1, y)`-style denominators are structurally non-zero.
    if (isinstance(right, ast.Call) and isinstance(right.func, ast.Name)
            and right.func.id == "max"):
        return True
    return any(isinstance(a, (ast.If, ast.IfExp, ast.Try)) for a in ancestors)


@rule("BF302", Severity.WARNING, "source",
      "divisions in derived-metric/efficiency code are guarded against "
      "zero denominators")
def check_unguarded_divisions(r, tree: ast.AST, path: str):
    findings: list[Finding] = []

    def visit(node: ast.AST, ancestors: list[ast.AST]) -> None:
        if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)
                and not _is_guarded_division(node, ancestors)):
            findings.append(r.finding(
                "unguarded division — an all-zero launch turns this "
                "into ZeroDivisionError/NaN",
                subject=f"{path}:{node.lineno}",
            ))
        ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child, ancestors)
        ancestors.pop()

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
            marker in node.name for marker in _METRIC_FUNCTION_MARKERS
        ):
            visit(node, [])
    return findings


@rule("BF303", Severity.WARNING, "source",
      "simulator timing paths avoid float equality comparisons")
def check_float_equality(r, tree: ast.AST, path: str):
    normalized = path.replace("\\", "/")
    if not any(normalized.endswith(m) for m in _TIMING_PATH_MODULES):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        sides = [node.left, *node.comparators]
        if any(isinstance(s, ast.Constant) and isinstance(s.value, float)
               for s in sides):
            yield r.finding(
                "float equality in a timing path — perturbation factors "
                "make exact float matches unreliable; compare with a "
                "tolerance or restructure as an inequality",
                subject=f"{path}:{node.lineno}",
            )


# ---------------------------------------------------------------------------


def parse_module(path: str | Path) -> ast.AST:
    return ast.parse(Path(path).read_text(encoding="utf-8"), filename=str(path))


def lint_source_file(path: str | Path) -> list[Finding]:
    """Run all source rules on one Python file."""
    path = Path(path)
    try:
        tree = parse_module(path)
    except SyntaxError as exc:
        from .findings import get_rule

        return [get_rule("BF301").finding(
            f"cannot parse: {exc}", subject=str(path),
            severity=Severity.ERROR,
        )]
    return run_rules("source", tree, str(path))


def lint_source_tree(root: str | Path) -> list[Finding]:
    """Run all source rules over every ``*.py`` file under ``root``."""
    findings: list[Finding] = []
    for path in sorted(Path(root).rglob("*.py")):
        findings.extend(lint_source_file(path))
    return findings
