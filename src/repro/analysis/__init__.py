"""Static analysis: counter-invariant linter and workload sanitizer.

The statistical pipeline is only as trustworthy as the counter vectors
and workload models feeding it — a mislabeled counter family or an
out-of-range access pattern silently corrupts every downstream
importance ranking and prediction. This subpackage is the fail-fast
correctness layer:

* :mod:`~repro.analysis.catalogue` — internal consistency of the
  counter catalogue (family tags, units, predictor flags, metric
  dependencies);
* :mod:`~repro.analysis.workload` — invariants over kernel workload
  models and finalized counter vectors;
* :mod:`~repro.analysis.arch` — architecture-description validation;
* :mod:`~repro.analysis.source` — AST lint over the package source
  (unknown counter literals, unguarded metric divisions, float
  equality in timing paths);
* :mod:`~repro.analysis.determinism` — reproducibility sanitizer over
  every module reachable from the pipeline entry points (unseeded
  randomness, wall-clock timing, unordered set iteration, non-atomic
  artifact writes, process fan-out outside :mod:`repro.parallel`);
* :mod:`~repro.analysis.plan` — pre-flight campaign plan checks
  (design rank, collinearity, counter coverage, transfer overlap,
  cost/budget) run by ``repro lint --plan`` and ``Campaign.run``;
* :mod:`~repro.analysis.schemas` — versioned schema registry for every
  on-disk artifact format, behind ``repro lint --artifacts`` and
  :meth:`ProfileRepository.verify_all`;
* :mod:`~repro.analysis.runner` — whole-tree orchestration behind the
  ``repro lint`` CLI and the CI gate.

Rules are registered :class:`Rule` objects with stable ``BFxxx`` ids
(see ``docs/analysis.md``); the profiler re-runs the workload and
counter rules per launch in sanitizer mode (``Profiler(...,
sanitize=True)``) and raises :class:`InvariantViolation` on ERROR
findings.
"""

from . import arch as _arch_rules  # noqa: F401 — import registers rules
from . import catalogue as _catalogue_rules  # noqa: F401
from . import determinism as _determinism_rules  # noqa: F401
from . import plan as _plan_rules  # noqa: F401
from . import schemas as _schema_rules  # noqa: F401
from . import source as _source_rules  # noqa: F401
from . import workload as _workload_rules  # noqa: F401
from .arch import lint_arch
from .catalogue import lint_catalogue
from .determinism import lint_determinism, lint_determinism_file
from .findings import (
    Finding,
    InvariantViolation,
    Rule,
    Severity,
    all_rules,
    doc_url_of,
    family_of,
    get_rule,
    max_severity,
    rule,
    rules_for,
    run_rules,
)
from .plan import CampaignPlan, lint_plan, plan_from_dict, plan_from_file
from .runner import (
    as_json,
    exit_code,
    lint_kernel_launches,
    lint_tree,
    rule_table,
    summarize,
)
from .schemas import (
    SCHEMAS,
    lint_artifacts,
    validate_artifact,
    validate_fields,
)
from .source import lint_source_file, lint_source_tree
from .workload import lint_counters, lint_workload

__all__ = [
    "Finding",
    "InvariantViolation",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "max_severity",
    "family_of",
    "doc_url_of",
    "rule",
    "rules_for",
    "run_rules",
    "lint_arch",
    "lint_catalogue",
    "lint_counters",
    "lint_workload",
    "lint_source_file",
    "lint_source_tree",
    "lint_determinism",
    "lint_determinism_file",
    "lint_tree",
    "lint_kernel_launches",
    "CampaignPlan",
    "lint_plan",
    "plan_from_dict",
    "plan_from_file",
    "SCHEMAS",
    "lint_artifacts",
    "validate_artifact",
    "validate_fields",
    "as_json",
    "exit_code",
    "summarize",
    "rule_table",
]
