"""Static analysis: counter-invariant linter and workload sanitizer.

The statistical pipeline is only as trustworthy as the counter vectors
and workload models feeding it — a mislabeled counter family or an
out-of-range access pattern silently corrupts every downstream
importance ranking and prediction. This subpackage is the fail-fast
correctness layer:

* :mod:`~repro.analysis.catalogue` — internal consistency of the
  counter catalogue (family tags, units, predictor flags, metric
  dependencies);
* :mod:`~repro.analysis.workload` — invariants over kernel workload
  models and finalized counter vectors;
* :mod:`~repro.analysis.arch` — architecture-description validation;
* :mod:`~repro.analysis.source` — AST lint over the package source
  (unknown counter literals, unguarded metric divisions, float
  equality in timing paths);
* :mod:`~repro.analysis.runner` — whole-tree orchestration behind the
  ``repro lint`` CLI and the CI gate.

Rules are registered :class:`Rule` objects with stable ``BFxxx`` ids
(see ``docs/analysis.md``); the profiler re-runs the workload and
counter rules per launch in sanitizer mode (``Profiler(...,
sanitize=True)``) and raises :class:`InvariantViolation` on ERROR
findings.
"""

from . import arch as _arch_rules  # noqa: F401 — import registers rules
from . import catalogue as _catalogue_rules  # noqa: F401
from . import source as _source_rules  # noqa: F401
from . import workload as _workload_rules  # noqa: F401
from .arch import lint_arch
from .catalogue import lint_catalogue
from .findings import (
    Finding,
    InvariantViolation,
    Rule,
    Severity,
    all_rules,
    get_rule,
    max_severity,
    rule,
    rules_for,
    run_rules,
)
from .runner import (
    as_json,
    lint_kernel_launches,
    lint_tree,
    rule_table,
    summarize,
)
from .source import lint_source_file, lint_source_tree
from .workload import lint_counters, lint_workload

__all__ = [
    "Finding",
    "InvariantViolation",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "max_severity",
    "rule",
    "rules_for",
    "run_rules",
    "lint_arch",
    "lint_catalogue",
    "lint_counters",
    "lint_workload",
    "lint_source_file",
    "lint_source_tree",
    "lint_tree",
    "lint_kernel_launches",
    "as_json",
    "summarize",
    "rule_table",
]
