"""Determinism sanitizer: AST rules BF401–BF405 over the pipeline source.

The whole value proposition of this tool — bit-identical campaigns at
any ``n_jobs``, checkpoint resume, content-addressed repositories —
rests on the hot pipeline being *deterministic by construction*. These
rules flag source constructs that quietly break that property:

* **BF401** — unseeded randomness (stdlib ``random.*`` calls, legacy
  ``np.random.*`` global-state calls, a bare ``default_rng()``): every
  random draw must come from an explicitly seeded, explicitly threaded
  :class:`numpy.random.Generator` (see :mod:`repro.parallel`).
* **BF402** — ``time.time()`` in pipeline code: wall-clock time jumps
  (NTP, DST) and differs across workers; ordering and measurement must
  use ``time.monotonic()`` / ``time.perf_counter()``.
* **BF403** — iterating a ``set``/``frozenset`` into ordered output:
  string-hash randomization makes set order vary across *processes*,
  so any list/loop built from one differs between workers and runs.
* **BF404** — direct ``open(..., "w")`` / ``Path.write_text`` in
  persistence modules: durable artifacts must go through the atomic
  tmp+fsync+rename helper so a crash can never leave a torn file.
* **BF405** — ``multiprocessing``/``concurrent.futures`` outside
  :mod:`repro.parallel`: process fan-out must flow through the one
  audited helper that guarantees order-stable, bit-identical results.

The pass is *scoped by reachability*: :func:`pipeline_modules` walks the
package import graph from the pipeline entry points (``Campaign.run``,
the predictor ``fit``/``predict`` layers) and only modules on those
paths are linted, so CLI frontends and benchmarks can write files and
read clocks freely.

The shipped tree must lint clean — :func:`lint_determinism` self-hosts
in CI. The few justified exceptions live in ``allowlist.txt`` next to
this module, one line each: ``<rule> <path-suffix> <qualname> — why``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding, Severity, rule, run_rules

__all__ = [
    "AllowlistEntry",
    "load_allowlist",
    "apply_allowlist",
    "pipeline_modules",
    "lint_determinism",
    "lint_determinism_file",
    "ALLOWLIST_PATH",
]

#: Packaged allowlist of justified suppressions (≤ 10 entries, enforced
#: by tests/analysis/test_determinism_rules.py).
ALLOWLIST_PATH = Path(__file__).with_name("allowlist.txt")

#: Modules whose code constitutes the pipeline entry points; everything
#: importable from these (transitively, within the package) is in scope.
ENTRY_MODULES = (
    "profiling/campaign.py",   # Campaign.run
    "profiling/profiler.py",   # per-launch profiling
    "core/model.py",           # BlackForest.fit
    "core/prediction.py",      # ProblemScalingPredictor.fit/predict
    "core/hardware.py",        # HardwareScalingPredictor.fit/predict
    "ml/forest.py",            # forest fit fan-out
)

#: stdlib ``random`` functions that consume the unseeded global state.
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "seed", "getrandbits", "triangular",
}

#: Legacy ``numpy.random`` module-level functions backed by the hidden
#: global RandomState.
_NP_RANDOM_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "normal",
    "uniform", "standard_normal", "binomial", "poisson", "exponential",
}

#: Builtins that consume an iterable order-insensitively; feeding them a
#: set is fine.
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "min", "max", "sum", "len", "any", "all", "set",
    "frozenset",
}

#: Path fragments marking modules that persist pipeline artifacts (the
#: scope of BF404).
_PERSISTENCE_PATHS = ("/profiling/", "/obs/")


# ---------------------------------------------------------------------------
# shared AST walking with context


def _walk(tree: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST], str]]:
    """Yield ``(node, ancestors, qualname)`` for every node in the tree.

    ``qualname`` is the dotted enclosing class/function path (empty at
    module level) — what allowlist entries match against.
    """

    def visit(node: ast.AST, ancestors: list[ast.AST], names: list[str]):
        yield node, ancestors, ".".join(names)
        scoped = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
        if scoped:
            names.append(node.name)
        ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, ancestors, names)
        ancestors.pop()
        if scoped:
            names.pop()

    yield from visit(tree, [], [])


def _attr_chain(node: ast.AST) -> list[str]:
    """``np.random.seed`` -> ``["np", "random", "seed"]`` (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts[::-1]


# ---------------------------------------------------------------------------
# rules


@rule("BF401", Severity.ERROR, "determinism",
      "pipeline code draws randomness only from seeded Generator streams")
def check_unseeded_random(r, tree: ast.AST, path: str):
    for node, _ancestors, qualname in _walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if len(chain) == 2 and chain[0] == "random" \
                and chain[1] in _STDLIB_RANDOM_FNS:
            yield r.finding(
                f"stdlib random.{chain[1]}() uses the unseeded global "
                f"state; draw from a seeded numpy Generator stream "
                f"(repro.parallel.spawn_streams) instead",
                subject=f"{path}:{node.lineno}", qualname=qualname,
            )
        elif (len(chain) == 3 and chain[0] in ("np", "numpy")
                and chain[1] == "random" and chain[2] in _NP_RANDOM_FNS):
            yield r.finding(
                f"numpy.random.{chain[2]}() uses the hidden global "
                f"RandomState; draw from an explicit seeded Generator",
                subject=f"{path}:{node.lineno}", qualname=qualname,
            )
        elif chain and chain[-1] == "default_rng" and not node.args \
                and not node.keywords:
            yield r.finding(
                "default_rng() without a seed is entropy-seeded — every "
                "run differs; thread an explicit seed or parent stream",
                subject=f"{path}:{node.lineno}", qualname=qualname,
            )


@rule("BF402", Severity.ERROR, "determinism",
      "pipeline timing uses monotonic clocks, never wall-clock time.time()")
def check_wallclock(r, tree: ast.AST, path: str):
    for node, _ancestors, qualname in _walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _attr_chain(node.func) == ["time", "time"]:
            yield r.finding(
                "time.time() is wall-clock (jumps under NTP/DST and "
                "differs across workers); use time.monotonic() for "
                "ordering/deadlines or time.perf_counter() for intervals",
                subject=f"{path}:{node.lineno}", qualname=qualname,
            )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set", "frozenset"
        ):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return _is_set_expr(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _consumed_order_insensitively(ancestors: list[ast.AST]) -> bool:
    """True when the nearest enclosing call folds the iteration order
    away (``sorted(... for x in some_set)`` is deterministic)."""
    for ancestor in reversed(ancestors):
        if isinstance(ancestor, ast.Call):
            func = ancestor.func
            if isinstance(func, ast.Name) \
                    and func.id in _ORDER_INSENSITIVE_CONSUMERS:
                return True
            return False
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Module)):
            return False
    return False


@rule("BF403", Severity.WARNING, "determinism",
      "set/frozenset iteration never feeds ordered output unsorted")
def check_set_iteration(r, tree: ast.AST, path: str):
    def flag(lineno: int, qualname: str) -> Finding:
        return r.finding(
            "iterating a set into ordered output — string-hash "
            "randomization makes the order differ between processes; "
            "wrap in sorted(...)",
            subject=f"{path}:{lineno}", qualname=qualname,
        )

    for node, ancestors, qualname in _walk(tree):
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            yield flag(node.lineno, qualname)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if any(_is_set_expr(gen.iter) for gen in node.generators) \
                    and not _consumed_order_insensitively(ancestors):
                yield flag(node.lineno, qualname)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple") and node.args \
                and _is_set_expr(node.args[0]):
            yield flag(node.lineno, qualname)


def _write_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open(...)`` call, if statically known."""
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@rule("BF404", Severity.ERROR, "determinism",
      "persistence modules write artifacts via the atomic "
      "tmp+fsync+rename helper, never a bare open('w')")
def check_raw_writes(r, tree: ast.AST, path: str):
    normalized = "/" + path.replace("\\", "/").lstrip("/")
    if not any(frag in normalized for frag in _PERSISTENCE_PATHS):
        return
    for node, _ancestors, qualname in _walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _write_mode(node)
            if mode is not None and "w" in mode:
                yield r.finding(
                    "bare open(..., 'w') can tear the artifact on a "
                    "crash; route the write through the atomic "
                    "tmp+fsync+rename helper",
                    subject=f"{path}:{node.lineno}", qualname=qualname,
                )
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "write_text":
            yield r.finding(
                "Path.write_text is a non-atomic in-place write; route "
                "the write through the atomic tmp+fsync+rename helper",
                subject=f"{path}:{node.lineno}", qualname=qualname,
            )


@rule("BF405", Severity.ERROR, "determinism",
      "process fan-out happens only through repro.parallel")
def check_multiprocessing(r, tree: ast.AST, path: str):
    normalized = path.replace("\\", "/")
    if normalized.endswith("repro/parallel.py"):
        return
    for node, _ancestors, qualname in _walk(tree):
        modules: list[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            modules = [node.module]
        for mod in modules:
            root = mod.split(".")[0]
            if root in ("multiprocessing", "concurrent"):
                yield r.finding(
                    f"direct {mod} use outside repro.parallel — fan out "
                    f"through repro.parallel.process_map so results stay "
                    f"order-stable and bit-identical at any n_jobs",
                    subject=f"{path}:{node.lineno}", qualname=qualname,
                )


# ---------------------------------------------------------------------------
# allowlist


@dataclass(frozen=True)
class AllowlistEntry:
    """One justified suppression: rule + path suffix + qualname + why."""

    rule: str
    path: str
    qualname: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        subject_path = finding.subject.rsplit(":", 1)[0].replace("\\", "/")
        if not subject_path.endswith(self.path):
            return False
        qualname = str(finding.context.get("qualname", ""))
        return self.qualname == "*" or qualname == self.qualname \
            or qualname.startswith(self.qualname + ".")


def load_allowlist(path: str | Path = ALLOWLIST_PATH) -> list[AllowlistEntry]:
    """Parse an allowlist file; every entry must carry a justification."""
    entries: list[AllowlistEntry] = []
    path = Path(path)
    if not path.exists():
        return entries
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, justification = line.partition("—")
        justification = justification.strip()
        parts = head.split()
        if len(parts) != 3 or not justification:
            raise ValueError(
                f"{path}:{lineno}: allowlist entries are "
                f"'<rule> <path-suffix> <qualname> — <justification>', "
                f"got {line!r}"
            )
        entries.append(AllowlistEntry(
            rule=parts[0], path=parts[1], qualname=parts[2],
            justification=justification,
        ))
    return entries


def apply_allowlist(
    findings: Iterable[Finding], entries: Iterable[AllowlistEntry]
) -> list[Finding]:
    """Drop findings covered by an allowlist entry."""
    entries = list(entries)
    return [
        f for f in findings
        if not any(entry.matches(f) for entry in entries)
    ]


# ---------------------------------------------------------------------------
# reachability + orchestration


def _resolve_import(
    module: str, root: Path, names: Iterable[str] = ()
) -> list[Path]:
    """Package-internal files an import statement pulls in.

    ``module`` is dotted and package-absolute (``repro.obs.log``) or
    already stripped of the package prefix. External modules resolve to
    nothing.
    """
    parts = module.split(".")
    if parts and parts[0] == root.name:
        parts = parts[1:]
    elif module.startswith(root.name) or not parts:
        parts = parts
    base = root.joinpath(*parts) if parts else root
    out: list[Path] = []
    if base.with_suffix(".py").is_file():
        out.append(base.with_suffix(".py"))
    elif (base / "__init__.py").is_file():
        out.append(base / "__init__.py")
        for name in names:
            sub = base / f"{name}.py"
            if sub.is_file():
                out.append(sub)
            elif (base / name / "__init__.py").is_file():
                out.append(base / name / "__init__.py")
    return out


def _module_imports(path: Path, root: Path) -> set[Path]:
    """Package-internal modules one file imports (top-level or lazy)."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
    except SyntaxError:
        return set()
    package = root.name
    imports: set[Path] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package \
                        or alias.name.startswith(package + "."):
                    imports.update(_resolve_import(alias.name, root))
        elif isinstance(node, ast.ImportFrom):
            names = [alias.name for alias in node.names]
            if node.level:
                base = path.parent
                for _ in range(node.level - 1):
                    base = base.parent
                try:
                    prefix = base.relative_to(root).parts
                except ValueError:
                    continue
                module = ".".join(prefix + tuple(
                    (node.module or "").split(".")
                )).strip(".")
                imports.update(_resolve_import(module, root, names))
            elif node.module and (
                node.module == package
                or node.module.startswith(package + ".")
            ):
                imports.update(_resolve_import(node.module, root, names))
    return imports


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).parent


def pipeline_modules(root: str | Path | None = None) -> list[Path]:
    """Every package module reachable (via imports) from the pipeline
    entry points, sorted — the determinism sanitizer's scope."""
    root = _package_root() if root is None else Path(root)
    frontier = [
        root / entry for entry in ENTRY_MODULES if (root / entry).is_file()
    ]
    seen: set[Path] = set()
    while frontier:
        module = frontier.pop()
        if module in seen:
            continue
        seen.add(module)
        frontier.extend(_module_imports(module, root) - seen)
    return sorted(seen)


def lint_determinism_file(path: str | Path) -> list[Finding]:
    """Run the BF4xx rules on one Python file (no allowlist applied)."""
    path = Path(path)
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
    except SyntaxError as exc:
        from .findings import get_rule

        return [get_rule("BF401").finding(
            f"cannot parse: {exc}", subject=str(path),
            severity=Severity.ERROR,
        )]
    return run_rules("determinism", tree, str(path))


def lint_determinism(
    root: str | Path | None = None,
    allowlist: str | Path | None = ALLOWLIST_PATH,
) -> list[Finding]:
    """The BF4xx pass over every pipeline-reachable module.

    ``allowlist=None`` disables suppression (tests use this to assert
    the raw findings); the default applies the packaged allowlist.
    """
    findings: list[Finding] = []
    for module in pipeline_modules(root):
        findings.extend(lint_determinism_file(module))
    if allowlist is not None:
        findings = apply_allowlist(findings, load_allowlist(allowlist))
    return findings
