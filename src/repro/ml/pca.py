"""Principal component analysis with varimax rotation and factor loadings.

Mirrors the R workflow the paper describes in Section 4.3: ``prcomp``
for PCA and ``varimax`` for rotating the retained components. The
*factor loadings* — correlations between original counters and the
(rotated) components — are the interpretation device of Sections
5.2–5.4: e.g. for reduce1 the replay counters load "positively and
strongly ... on PC2 and also negatively on PC4".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .preprocessing import StandardScaler

__all__ = ["PCA", "varimax", "FactorLoadings"]


def varimax(
    loadings: np.ndarray, gamma: float = 1.0, max_iter: int = 100, tol: float = 1e-10
) -> tuple[np.ndarray, np.ndarray]:
    """Varimax (orthogonal) rotation of a loading matrix.

    Kaiser's classical pairwise planar-rotation algorithm: for every
    pair of factors the analytically optimal rotation angle is applied,
    sweeping until all angles vanish. (The popular SVD fixed-point
    formulation converges unreliably near symmetric saddle points,
    e.g. equal-variance factor blocks; the planar form does not.)

    Returns the rotated loadings and the orthogonal matrix ``R`` with
    ``rotated = loadings @ R``. ``gamma=1`` is varimax; ``gamma=0``
    quartimax.
    """
    L = np.asarray(loadings, dtype=float)
    if L.ndim != 2:
        raise ValueError("loadings must be 2-D")
    p, k = L.shape
    if k < 2:
        return L.copy(), np.eye(k)
    Lr = L.copy()
    R = np.eye(k)
    for _ in range(max_iter):
        max_angle = 0.0
        for i in range(k - 1):
            for j in range(i + 1, k):
                x, y = Lr[:, i], Lr[:, j]
                u = x * x - y * y
                v = 2.0 * x * y
                A, B = u.sum(), v.sum()
                C = float(u @ u - v @ v)
                D = float(2.0 * (u @ v))
                num = D - gamma * 2.0 * A * B / p
                den = C - gamma * (A * A - B * B) / p
                if num == 0.0 and den == 0.0:
                    continue
                phi = 0.25 * np.arctan2(num, den)
                if abs(phi) < tol:
                    continue
                max_angle = max(max_angle, abs(phi))
                c, s = np.cos(phi), np.sin(phi)
                G = np.array([[c, -s], [s, c]])
                Lr[:, [i, j]] = Lr[:, [i, j]] @ G
                R[:, [i, j]] = R[:, [i, j]] @ G
        if max_angle < tol:
            break
    return Lr, R


@dataclass
class FactorLoadings:
    """Loading table: variables x components, with helpers for reading it."""

    names: list[str]
    components: list[str]
    values: np.ndarray  # (n_variables, n_components)

    def loading(self, variable: str, component: str) -> float:
        i = self.names.index(variable)
        j = self.components.index(component)
        return float(self.values[i, j])

    def strong(self, component: str, threshold: float = 0.5) -> list[tuple[str, float]]:
        """Variables loading strongly (|loading| >= threshold) on a component,
        sorted by decreasing absolute loading."""
        j = self.components.index(component)
        col = self.values[:, j]
        idx = np.where(np.abs(col) >= threshold)[0]
        order = idx[np.argsort(-np.abs(col[idx]))]
        return [(self.names[i], float(col[i])) for i in order]

    def sign(self, variable: str, component: str) -> int:
        """Sign of a loading: +1, -1, or 0."""
        v = self.loading(variable, component)
        return int(np.sign(v))


class PCA:
    """Principal component analysis via SVD of standardized data.

    Parameters
    ----------
    n_components:
        Components to retain. None keeps all; a float in (0, 1) keeps
        the smallest number explaining at least that variance fraction
        (the paper retains components covering >96–97% of variance).
    standardize:
        Standardize columns before decomposition (``prcomp(scale=TRUE)``);
        counters have wildly different magnitudes so this defaults True.
    rotate:
        Apply varimax rotation to the retained loadings, as the paper's
        toolchain does.
    """

    def __init__(
        self,
        n_components: int | float | None = None,
        standardize: bool = True,
        rotate: bool = False,
    ) -> None:
        self.n_components = n_components
        self.standardize = standardize
        self.rotate = rotate

    def fit(self, X: np.ndarray, names: list[str] | None = None) -> "PCA":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n, p = X.shape
        if n < 2:
            raise ValueError("need at least 2 observations")
        self.names_ = list(names) if names is not None else [f"x{j}" for j in range(p)]
        if len(self.names_) != p:
            raise ValueError("names length mismatch")

        self._scaler = StandardScaler(with_std=self.standardize).fit(X)
        Z = self._scaler.transform(X)

        u, s, vt = np.linalg.svd(Z, full_matrices=False)
        eigvals = (s**2) / (n - 1)
        total = eigvals.sum()
        ratios = eigvals / total if total > 0 else np.zeros_like(eigvals)

        if self.n_components is None:
            k = min(n - 1, p)
        elif isinstance(self.n_components, float):
            if not 0.0 < self.n_components <= 1.0:
                raise ValueError("fractional n_components must be in (0, 1]")
            k = int(np.searchsorted(np.cumsum(ratios), self.n_components) + 1)
            k = min(k, ratios.size)
        else:
            k = min(int(self.n_components), min(n - 1, p))
            if k < 1:
                raise ValueError("n_components must be >= 1")

        self.components_ = vt[:k]  # (k, p) principal axes
        self.explained_variance_ = eigvals[:k]
        self.explained_variance_ratio_ = ratios[:k]
        self.singular_values_ = s[:k]
        self.n_components_ = k

        # Loadings: axes scaled by sqrt(eigenvalue) — correlations between
        # standardized variables and component scores.
        raw = (vt[:k].T * np.sqrt(eigvals[:k]))  # (p, k)
        if self.rotate and k >= 2:
            rotated, R = varimax(raw)
            self.rotation_ = R
            self.loadings_values_ = rotated
        else:
            self.rotation_ = np.eye(k)
            self.loadings_values_ = raw
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project observations onto the retained principal axes."""
        Z = self._scaler.transform(np.asarray(X, dtype=float))
        return Z @ self.components_.T

    def fit_transform(self, X: np.ndarray, names: list[str] | None = None) -> np.ndarray:
        return self.fit(X, names=names).transform(X)

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Reconstruct (approximately) from component scores."""
        Z = np.asarray(scores, dtype=float) @ self.components_
        return self._scaler.inverse_transform(Z)

    @property
    def loadings(self) -> FactorLoadings:
        comp_names = [f"PC{i + 1}" for i in range(self.n_components_)]
        return FactorLoadings(
            names=self.names_, components=comp_names, values=self.loadings_values_
        )

    def n_components_for_variance(self, fraction: float) -> int:
        """Smallest number of retained components explaining >= fraction."""
        cum = np.cumsum(self.explained_variance_ratio_)
        idx = np.searchsorted(cum, fraction)
        if idx >= cum.size and (cum.size == 0 or cum[-1] < fraction):
            raise ValueError(
                f"retained components only explain {cum[-1] if cum.size else 0:.3f}"
            )
        return int(min(idx, cum.size - 1) + 1)
