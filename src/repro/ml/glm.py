"""Generalized linear models for counter-vs-problem-size regression.

The paper models the retained important counters "in terms of typical
characteristics of either the problem in hand or both the problem and
hardware type" (Section 4.2). For "trivial cases (e.g., single problem
characteristics such as matrix size in matrix multiply) ... (generalized)
linear models are adequate" — Fig. 5c's models are GLMs whose quality
is reported as *residual deviance*.

Two families are provided:

* Gaussian / identity link with polynomial features (ordinary least
  squares via QR) — the Fig. 5c models;
* Poisson / log link via iteratively reweighted least squares — natural
  for count-valued counters, used when the Gaussian fit is poor.
"""

from __future__ import annotations

import numpy as np

from .metrics import r2_score
from .preprocessing import polynomial_features

__all__ = ["GaussianGLM", "PoissonGLM", "fit_best_polynomial"]


class GaussianGLM:
    """Least-squares polynomial regression of a response on one predictor.

    Parameters
    ----------
    degree:
        Polynomial degree of the design matrix (1 = straight line).
    log_x, log_y:
        Optional log-transforms; counters frequently grow polynomially
        in the problem size, so a log-log line is often the best simple
        model (slope = growth exponent).
    """

    def __init__(self, degree: int = 1, log_x: bool = False, log_y: bool = False) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.log_x = log_x
        self.log_y = log_y

    def _tx(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).ravel()
        if self.log_x:
            if np.any(x <= 0):
                raise ValueError("log_x requires positive x")
            x = np.log(x)
        return x

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianGLM":
        x = self._tx(x)
        y_raw = np.asarray(y, dtype=float).ravel()
        if x.size != y_raw.size:
            raise ValueError("x and y length mismatch")
        if x.size <= self.degree:
            raise ValueError("not enough observations for the requested degree")
        y_fit = y_raw
        if self.log_y:
            if np.any(y_raw <= 0):
                raise ValueError("log_y requires positive y")
            y_fit = np.log(y_raw)
        B = polynomial_features(x, self.degree)
        self.coef_, _, _, _ = np.linalg.lstsq(B, y_fit, rcond=None)
        fitted = B @ self.coef_
        if self.log_y:
            fitted = np.exp(fitted)
        self.residual_deviance_ = float(np.sum((y_raw - fitted) ** 2))
        self.null_deviance_ = float(np.sum((y_raw - y_raw.mean()) ** 2))
        self.r_squared_ = r2_score(y_raw, fitted)
        n, k = x.size, self.degree + 1
        rss = max(self.residual_deviance_, np.finfo(float).tiny)
        self.aic_ = float(n * np.log(rss / n) + 2 * k)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = self._tx(x)
        B = polynomial_features(x, self.degree)
        out = B @ self.coef_
        return np.exp(out) if self.log_y else out


class PoissonGLM:
    """Poisson regression with log link, fitted by IRLS.

    Response values must be non-negative. Useful for raw event counts
    (transactions, requests) whose variance scales with the mean.
    """

    def __init__(self, degree: int = 1, max_iter: int = 50, tol: float = 1e-8) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PoissonGLM":
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if x.size != y.size:
            raise ValueError("x and y length mismatch")
        if np.any(y < 0):
            raise ValueError("Poisson response must be non-negative")
        B = polynomial_features(x, self.degree)
        # Initialize from a log-linear least-squares fit.
        eta = np.log(np.maximum(y, 0.5))
        beta, _, _, _ = np.linalg.lstsq(B, eta, rcond=None)
        for _ in range(self.max_iter):
            eta = np.clip(B @ beta, -30.0, 30.0)
            mu = np.exp(eta)
            # IRLS working response and weights for log link: W = mu.
            z = eta + (y - mu) / mu
            W = mu
            BW = B * W[:, None]
            beta_new = np.linalg.solve(B.T @ BW + 1e-12 * np.eye(B.shape[1]), BW.T @ z)
            if np.max(np.abs(beta_new - beta)) < self.tol:
                beta = beta_new
                break
            beta = beta_new
        self.coef_ = beta
        mu = np.exp(np.clip(B @ beta, -30.0, 30.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            term = np.where(y > 0, y * np.log(y / mu), 0.0)
        self.residual_deviance_ = float(2.0 * np.sum(term - (y - mu)))
        self.r_squared_ = r2_score(y, mu)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).ravel()
        B = polynomial_features(x, self.degree)
        return np.exp(np.clip(B @ self.coef_, -30.0, 30.0))


def fit_best_polynomial(
    x: np.ndarray,
    y: np.ndarray,
    max_degree: int = 3,
    try_log: bool = True,
) -> GaussianGLM:
    """Model selection over small polynomial GLMs by AIC.

    Tries degrees 1..max_degree in linear space, and (when the data
    allow) log-x / log-y / log-log variants, returning the AIC-best
    model. This implements the paper's "(generalized) linear models are
    adequate [for trivial cases]" step without hand-tuning per counter.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    candidates: list[GaussianGLM] = []
    log_opts = [(False, False)]
    if try_log:
        if np.all(x > 0):
            log_opts.append((True, False))
        if np.all(y > 0):
            log_opts.append((False, True))
        if np.all(x > 0) and np.all(y > 0):
            log_opts.append((True, True))
    for degree in range(1, max_degree + 1):
        if x.size <= degree + 1:
            break
        for log_x, log_y in log_opts:
            try:
                candidates.append(
                    GaussianGLM(degree=degree, log_x=log_x, log_y=log_y).fit(x, y)
                )
            except (ValueError, np.linalg.LinAlgError):
                continue
    if not candidates:
        raise ValueError("no polynomial model could be fitted")
    return min(candidates, key=lambda m: m.aic_)
