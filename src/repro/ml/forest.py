"""Random forest regression with the interpretation tools BlackForest relies on.

Follows Breiman's algorithm as summarized in Section 4.1.1 of the paper:

1. compose ``n_trees`` bootstrap samples from the original data,
2. for each sample grow an unpruned regression tree, choosing at each
   node a random subset of ``mtry`` predictors,
3. predict new data by averaging the predictions of the trees.

Two interpretation tools are provided (paper Section 4.1.1):

* **variable importance** — estimated by permuting a variable's values
  in each tree's out-of-bag (OOB) sample and measuring the increase in
  prediction error, carried out tree by tree as the forest is built
  (R ``randomForest``'s ``%IncMSE``), plus the impurity-decrease
  importance (``IncNodePurity``);
* **partial dependence** — see :mod:`repro.ml.partial_dependence`.

OOB aggregates give the validation quantities the paper reports:
``mse_oob`` and "% Var explained".
"""

from __future__ import annotations

import numpy as np

from .metrics import explained_variance, mse
from .tree import RegressionTree

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged ensemble of CART regression trees.

    Parameters
    ----------
    n_trees:
        Number of trees (R default: 500).
    max_features:
        ``mtry``; None uses the R regression default ``max(p // 3, 1)``.
    min_samples_leaf:
        Terminal node size (R regression default 5).
    max_depth:
        Optional depth cap; None grows unpruned trees.
    importance:
        When True (default), permutation importance is computed tree by
        tree during :meth:`fit`, as in R with ``importance=TRUE``.
    n_permutations:
        OOB permutation repetitions per tree and variable; >1 smooths
        the importance estimate for tiny OOB samples.
    rng:
        Seed or Generator for bootstraps, feature subsampling and
        permutations.
    """

    def __init__(
        self,
        n_trees: int = 500,
        max_features: int | None = None,
        min_samples_leaf: int = 5,
        max_depth: int | None = None,
        importance: bool = True,
        n_permutations: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if n_permutations < 1:
            raise ValueError("n_permutations must be >= 1")
        self.n_trees = n_trees
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.importance = importance
        self.n_permutations = n_permutations
        self._rng = np.random.default_rng(rng)

    # -- fitting ---------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: list[str] | None = None,
    ) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n, p = X.shape
        if n != y.size:
            raise ValueError("X and y length mismatch")
        if n < 2:
            raise ValueError("need at least 2 observations")
        if feature_names is not None and len(feature_names) != p:
            raise ValueError("feature_names length mismatch")

        mtry = self.max_features if self.max_features is not None else max(p // 3, 1)

        self.trees_: list[RegressionTree] = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n, dtype=np.intp)

        # Per-tree accumulators for permutation importance (Breiman 2001):
        # importance_j = mean over trees of (MSE_oob_permuted_j - MSE_oob),
        # later normalized by the standard error across trees (%IncMSE).
        perm_delta = np.zeros((self.n_trees, p)) if self.importance else None

        for t in range(self.n_trees):
            boot = self._rng.integers(0, n, size=n)
            oob_mask = np.ones(n, dtype=bool)
            oob_mask[boot] = False
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=mtry,
                rng=self._rng,
            ).fit(X[boot], y[boot])
            self.trees_.append(tree)

            oob_idx = np.where(oob_mask)[0]
            if oob_idx.size == 0:
                continue
            X_oob = X[oob_idx]
            pred_oob = tree.predict(X_oob)
            oob_sum[oob_idx] += pred_oob
            oob_count[oob_idx] += 1

            if self.importance:
                base_err = np.mean((pred_oob - y[oob_idx]) ** 2)
                for j in range(p):
                    col = X_oob[:, j]
                    if np.ptp(col) == 0.0:
                        continue  # permuting a constant changes nothing
                    delta = 0.0
                    X_perm = X_oob.copy()
                    for _ in range(self.n_permutations):
                        X_perm[:, j] = self._rng.permutation(col)
                        err = np.mean((tree.predict(X_perm) - y[oob_idx]) ** 2)
                        delta += err - base_err
                    perm_delta[t, j] = delta / self.n_permutations

        self.n_features_ = p
        self.feature_names_ = (
            list(feature_names)
            if feature_names is not None
            else [f"x{j}" for j in range(p)]
        )
        self._X_train = X
        self._y_train = y

        seen = oob_count > 0
        self.oob_prediction_ = np.full(n, np.nan)
        self.oob_prediction_[seen] = oob_sum[seen] / oob_count[seen]
        if np.any(seen):
            self.oob_mse_ = mse(y[seen], self.oob_prediction_[seen])
            self.oob_explained_variance_ = explained_variance(
                y[seen], self.oob_prediction_[seen]
            )
        else:  # pathological: every sample in-bag for every tree
            self.oob_mse_ = np.nan
            self.oob_explained_variance_ = np.nan

        if self.importance:
            mean_delta = perm_delta.mean(axis=0)
            sd = perm_delta.std(axis=0, ddof=1) if self.n_trees > 1 else np.ones(p)
            sd = np.where(sd > 0.0, sd, 1.0)
            # %IncMSE: mean increase normalized by its standard error.
            self.importance_ = mean_delta / (sd / np.sqrt(self.n_trees))
            self.importance_raw_ = mean_delta
        else:
            self.importance_ = None
            self.importance_raw_ = None

        purity = np.zeros(p)
        for tree in self.trees_:
            purity += tree.impurity_decrease_
        self.impurity_importance_ = purity / self.n_trees
        return self

    # -- prediction ------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Average of the per-tree predictions."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} columns, got {X.shape}"
            )
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict(X)
        return acc / len(self.trees_)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Explained variance on a held-out set (paper's validation check)."""
        return explained_variance(y, self.predict(X))

    # -- interpretation ----------------------------------------------------

    def ranked_importance(self) -> list[tuple[str, float]]:
        """Features sorted by decreasing permutation importance."""
        if self.importance_ is None:
            raise RuntimeError("fit with importance=True first")
        order = np.argsort(self.importance_)[::-1]
        return [(self.feature_names_[j], float(self.importance_[j])) for j in order]

    def top_features(self, k: int) -> list[str]:
        """Names of the ``k`` most important predictors."""
        return [name for name, _ in self.ranked_importance()[:k]]
