"""Random forest regression with the interpretation tools BlackForest relies on.

Follows Breiman's algorithm as summarized in Section 4.1.1 of the paper:

1. compose ``n_trees`` bootstrap samples from the original data,
2. for each sample grow an unpruned regression tree, choosing at each
   node a random subset of ``mtry`` predictors,
3. predict new data by averaging the predictions of the trees.

Two interpretation tools are provided (paper Section 4.1.1):

* **variable importance** — estimated by permuting a variable's values
  in each tree's out-of-bag (OOB) sample and measuring the increase in
  prediction error, carried out tree by tree as the forest is built
  (R ``randomForest``'s ``%IncMSE``), plus the impurity-decrease
  importance (``IncNodePurity``);
* **partial dependence** — see :mod:`repro.ml.partial_dependence`.

OOB aggregates give the validation quantities the paper reports:
``mse_oob`` and "% Var explained".

Determinism and parallelism
---------------------------

Every tree draws its bootstrap, per-node feature subsamples and OOB
permutations from its *own* RNG stream, spawned from the forest's
generator with ``SeedSequence.spawn`` semantics (``Generator.spawn``).
Tree ``t`` therefore sees the same stream whether the forest is fitted
serially or across a process pool, and aggregation runs in tree order —
so ``n_jobs > 1`` is **bit-for-bit identical** to ``n_jobs=1`` for a
fixed seed (pinned by ``tests/ml/test_forest_parallel.py``).

The OOB permutation importance is evaluated with one batched
``tree.predict`` over all (variable, repetition) permuted copies per
tree, with the permutations themselves drawn as a single matrix op
(``Generator.permuted``), instead of one predict call per variable. The
pre-vectorization implementation is preserved in
:mod:`repro.ml._reference` as the oracle and benchmark baseline.
"""

from __future__ import annotations

import numpy as np

from repro.obs import child_trace, collect, current_metrics, current_tracer, span
from repro.parallel import (
    chunk_bounds,
    process_map,
    resolve_n_jobs,
    spawn_streams,
)

from .metrics import explained_variance, mse
from .tree import RegressionTree

__all__ = ["RandomForestRegressor"]

# Cap on the stacked permuted-OOB matrix built per tree for the batched
# importance predict; larger jobs fall back to per-variable chunks.
_IMPORTANCE_BATCH_BYTES = 16 << 20


def _permutation_deltas(
    tree: RegressionTree,
    X_oob: np.ndarray,
    y_oob: np.ndarray,
    base_err: float,
    active: np.ndarray,
    n_permutations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """OOB error increase per active variable, batched.

    Builds one stacked matrix holding a permuted copy of ``X_oob`` per
    (variable, repetition) — the permutations drawn in a single
    ``rng.permuted`` matrix op — and runs *one* tree predict over the
    stack, instead of a predict per variable as the scalar reference
    does. Variables are chunked only to bound peak memory.
    """
    m, p = X_oob.shape
    reps = n_permutations
    deltas = np.empty(active.size)
    per_var_bytes = reps * m * p * 8
    chunk = max(1, int(_IMPORTANCE_BATCH_BYTES // max(per_var_bytes, 1)))
    for lo in range(0, active.size, chunk):
        vars_ = active[lo : lo + chunk]
        k = vars_.size * reps
        # One matrix op: row (a, r) is an independent permutation of
        # variable vars_[a]'s OOB column.
        perms = rng.permuted(np.repeat(X_oob[:, vars_].T, reps, axis=0), axis=1)
        stack = np.tile(X_oob, (k, 1))
        for a, j in enumerate(vars_):
            for r in range(reps):
                row = a * reps + r
                stack[row * m : (row + 1) * m, j] = perms[row]
        errs = ((tree.predict(stack).reshape(k, m) - y_oob) ** 2).mean(axis=1)
        deltas[lo : lo + vars_.size] = (
            errs.reshape(vars_.size, reps).mean(axis=1) - base_err
        )
    return deltas


def _fit_forest_tree(
    X: np.ndarray, y: np.ndarray, cfg: dict, rng: np.random.Generator
) -> tuple[RegressionTree, np.ndarray, np.ndarray | None, np.ndarray]:
    """Grow one tree from its own stream; returns OOB artifacts too.

    Pure function of ``(X, y, cfg, rng state)`` — the property that
    makes process-pool fits bit-identical to serial ones.
    """
    n, p = X.shape
    boot = rng.integers(0, n, size=n)
    oob_mask = np.ones(n, dtype=bool)
    oob_mask[boot] = False
    with span("forest.tree"):
        tree = RegressionTree(
            max_depth=cfg["max_depth"],
            min_samples_leaf=cfg["min_samples_leaf"],
            max_features=cfg["mtry"],
            rng=rng,
        ).fit(X[boot], y[boot])

    oob_idx = np.where(oob_mask)[0]
    pred_oob: np.ndarray | None = None
    perm_row = np.zeros(p)
    if oob_idx.size:
        X_oob = X[oob_idx]
        pred_oob = tree.predict(X_oob)
        if cfg["importance"]:
            y_oob = y[oob_idx]
            base_err = float(np.mean((pred_oob - y_oob) ** 2))
            # Permuting a constant column changes nothing; skip it.
            active = np.flatnonzero(np.ptp(X_oob, axis=0) != 0.0)
            if active.size:
                perm_row[active] = _permutation_deltas(
                    tree, X_oob, y_oob, base_err, active,
                    cfg["n_permutations"], rng,
                )
    return tree, oob_idx, pred_oob, perm_row


def _fit_forest_chunk(args) -> tuple[list[tuple], list | None, object]:
    """Worker: fit a contiguous run of trees; optionally collect spans.

    When the parent process was tracing (or collecting metrics), the
    worker records into fresh collectors (not the fork-inherited ones)
    and returns them for the parent to merge under ``forest.fit``.
    """
    X, y, cfg, rngs, traced, metered = args

    def grow():
        return [_fit_forest_tree(X, y, cfg, rng) for rng in rngs]

    spans = metrics = None
    if traced and metered:
        with child_trace() as tracer, collect() as registry:
            out = grow()
        spans, metrics = tracer.records, registry
    elif traced:
        with child_trace() as tracer:
            out = grow()
        spans = tracer.records
    elif metered:
        with collect() as registry:
            out = grow()
        metrics = registry
    else:
        out = grow()
    return out, spans, metrics


class RandomForestRegressor:
    """Bagged ensemble of CART regression trees.

    Parameters
    ----------
    n_trees:
        Number of trees (R default: 500).
    max_features:
        ``mtry``; None uses the R regression default ``max(p // 3, 1)``.
    min_samples_leaf:
        Terminal node size (R regression default 5).
    max_depth:
        Optional depth cap; None grows unpruned trees.
    importance:
        When True (default), permutation importance is computed tree by
        tree during :meth:`fit`, as in R with ``importance=TRUE``.
    n_permutations:
        OOB permutation repetitions per tree and variable; >1 smooths
        the importance estimate for tiny OOB samples.
    n_jobs:
        Worker processes for :meth:`fit`; 1 (default) fits in-process,
        -1 uses every core. Results are bit-for-bit independent of
        ``n_jobs`` (per-tree spawned RNG streams, ordered aggregation).
    rng:
        Seed or Generator; per-tree child streams are spawned from it
        for bootstraps, feature subsampling and permutations.
    """

    def __init__(
        self,
        n_trees: int = 500,
        max_features: int | None = None,
        min_samples_leaf: int = 5,
        max_depth: int | None = None,
        importance: bool = True,
        n_permutations: int = 1,
        n_jobs: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if n_permutations < 1:
            raise ValueError("n_permutations must be >= 1")
        self.n_trees = n_trees
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.importance = importance
        self.n_permutations = n_permutations
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._rng = np.random.default_rng(rng)
        #: Integer seed when one was given — what makes the forest's RNG
        #: position reconstructable for incremental-fit state capture
        #: (:mod:`repro.ml.incremental`); None for opaque Generators.
        self._seed = int(rng) if isinstance(rng, (int, np.integer)) else None
        #: Total child streams spawned from ``_rng`` so far. Spawning is
        #: the only way fit/refit consume the generator, so (seed,
        #: spawned) pins its position exactly.
        self._spawned = 0

    # -- fitting ---------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: list[str] | None = None,
    ) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n, p = X.shape
        if n != y.size:
            raise ValueError("X and y length mismatch")
        if n < 2:
            raise ValueError("need at least 2 observations")
        if feature_names is not None and len(feature_names) != p:
            raise ValueError("feature_names length mismatch")

        with span(
            "forest.fit",
            n_trees=self.n_trees,
            n_samples=n,
            n_features=p,
            n_jobs=min(self.n_jobs, self.n_trees),
        ):
            results = self._grow(X, y, self.n_trees, self._config(p))

        # Per-tree artifacts kept for life: what refit() re-aggregates
        # over and incremental-fit state serializes.
        self.trees_: list[RegressionTree] = []
        self._tree_oob: list[tuple[np.ndarray, np.ndarray | None]] = []
        self._tree_perm: list[np.ndarray] = []
        for tree, oob_idx, pred_oob, perm_row in results:
            self.trees_.append(tree)
            self._tree_oob.append((oob_idx, pred_oob))
            self._tree_perm.append(perm_row)
        self._generations = [{"n_trees": self.n_trees, "n_rows": n}]

        self.n_features_ = p
        self.feature_names_ = (
            list(feature_names)
            if feature_names is not None
            else [f"x{j}" for j in range(p)]
        )
        self._aggregate(X, y)
        return self

    def _config(self, p: int) -> dict:
        mtry = self.max_features if self.max_features is not None else max(p // 3, 1)
        return {
            "mtry": mtry,
            "min_samples_leaf": self.min_samples_leaf,
            "max_depth": self.max_depth,
            "importance": self.importance,
            "n_permutations": self.n_permutations,
        }

    def _grow(
        self, X: np.ndarray, y: np.ndarray, k: int, cfg: dict
    ) -> list[tuple]:
        """Grow ``k`` trees from the next ``k`` child streams.

        Streams continue the forest RNG's SeedSequence spawn counter, so
        tree ``t`` of a fit-then-refit sequence sees the same stream as
        tree ``t`` of any replay of that sequence — at any ``n_jobs``.
        """
        streams = spawn_streams(self._rng, k)
        self._spawned += k
        jobs = min(self.n_jobs, k)
        if jobs > 1:
            tracer = current_tracer()
            registry = current_metrics()
            bounds = chunk_bounds(k, jobs)
            tasks = [
                (X, y, cfg, streams[lo:hi], tracer is not None,
                 registry is not None)
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            results = []
            for chunk, child_spans, child_metrics in process_map(
                _fit_forest_chunk, tasks, jobs
            ):
                results.extend(chunk)
                if child_spans and tracer is not None:
                    tracer.adopt(child_spans)
                if child_metrics is not None and registry is not None:
                    registry.merge(child_metrics)
        else:
            results = [_fit_forest_tree(X, y, cfg, rng) for rng in streams]
        return results

    def _aggregate(self, X: np.ndarray, y: np.ndarray) -> None:
        """Recompute every derived quantity from the per-tree artifacts.

        Runs in tree order — float sums land in the same order
        regardless of worker scheduling or how many refit generations
        contributed trees, which is what keeps fit/refit sequences
        bit-identical at any ``n_jobs``.
        """
        n, p = X.shape
        T = len(self.trees_)
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n, dtype=np.intp)
        # Per-tree accumulators for permutation importance (Breiman 2001):
        # importance_j = mean over trees of (MSE_oob_permuted_j - MSE_oob),
        # later normalized by the standard error across trees (%IncMSE).
        perm_delta = np.zeros((T, p)) if self.importance else None
        for t, (oob_idx, pred_oob) in enumerate(self._tree_oob):
            if pred_oob is not None:
                # Trees from earlier generations only saw a prefix of the
                # rows; their OOB indices address that prefix, which is
                # stable under append-only growth.
                oob_sum[oob_idx] += pred_oob
                oob_count[oob_idx] += 1
            if self.importance:
                perm_delta[t] = self._tree_perm[t]

        self._X_train = X
        self._y_train = y

        seen = oob_count > 0
        self.oob_prediction_ = np.full(n, np.nan)
        self.oob_prediction_[seen] = oob_sum[seen] / oob_count[seen]
        if np.any(seen):
            self.oob_mse_ = mse(y[seen], self.oob_prediction_[seen])
            self.oob_explained_variance_ = explained_variance(
                y[seen], self.oob_prediction_[seen]
            )
        else:  # pathological: every sample in-bag for every tree
            self.oob_mse_ = np.nan
            self.oob_explained_variance_ = np.nan

        if self.importance:
            mean_delta = perm_delta.mean(axis=0)
            sd = perm_delta.std(axis=0, ddof=1) if T > 1 else np.ones(p)
            sd = np.where(sd > 0.0, sd, 1.0)
            # %IncMSE: mean increase normalized by its standard error.
            self.importance_ = mean_delta / (sd / np.sqrt(T))
            self.importance_raw_ = mean_delta
        else:
            self.importance_ = None
            self.importance_raw_ = None

        purity = np.zeros(p)
        for tree in self.trees_:
            purity += tree.impurity_decrease_
        self.impurity_importance_ = purity / T

    def refit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_new_trees: int | None = None,
    ) -> "RandomForestRegressor":
        """Incrementally extend a fitted forest with appended rows.

        ``X``/``y`` are the **full** data so far: the rows the forest was
        fitted on, unchanged, followed by the appended rows (append-only
        contract; shrinking or reshaping raises). Only ``n_new_trees``
        new trees are grown — on all data so far, from RNG streams that
        continue the forest's spawn sequence — and every derived
        aggregate (OOB, importance) is recomputed in tree order, so a
        fit-then-refit sequence is bit-for-bit reproducible at any
        ``n_jobs``. Existing trees are never re-grown.

        ``n_new_trees`` defaults to the old tree count scaled by the
        fraction of rows that are new (at least 1). A refit with no new
        rows and no explicit tree count is a no-op.
        """
        if not getattr(self, "trees_", None) or not getattr(
            self, "_generations", None
        ):
            raise RuntimeError("fit the forest before refit()")
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n, p = X.shape
        if n != y.size:
            raise ValueError("X and y length mismatch")
        if p != self.n_features_:
            raise ValueError(
                f"refit X must keep the fitted width {self.n_features_}, "
                f"got {p} columns"
            )
        n_prev = int(self._generations[-1]["n_rows"])
        if n < n_prev:
            raise ValueError(
                f"refit is append-only: forest was fitted on {n_prev} rows, "
                f"got {n}"
            )
        if n_new_trees is None:
            if n == n_prev:
                return self
            n_new_trees = max(1, round(len(self.trees_) * (n - n_prev) / n))
        if n_new_trees < 1:
            raise ValueError("n_new_trees must be >= 1")

        with span(
            "forest.refit",
            n_new_trees=n_new_trees,
            n_samples=n,
            n_features=p,
            n_jobs=min(self.n_jobs, n_new_trees),
        ):
            results = self._grow(X, y, n_new_trees, self._config(p))
        for tree, oob_idx, pred_oob, perm_row in results:
            self.trees_.append(tree)
            self._tree_oob.append((oob_idx, pred_oob))
            self._tree_perm.append(perm_row)
        self._generations.append({"n_trees": n_new_trees, "n_rows": n})
        self.n_trees = len(self.trees_)
        self._aggregate(X, y)
        return self

    # -- prediction ------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Average of the per-tree predictions."""
        X = self._validate_predict_input(X)
        if X.shape[0] == 0:
            return np.zeros(0)
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict(X)
        return acc / len(self.trees_)

    def _validate_predict_input(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            raise ValueError(
                f"X must be 2-D with shape (n_samples, {self.n_features_}); "
                f"got a 1-D array of shape {X.shape} — reshape a single "
                f"sample with X.reshape(1, -1)"
            )
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} columns, got {X.shape}"
            )
        return X

    def predict_many(self, queries) -> list[np.ndarray]:
        """Batched :meth:`predict` over many query matrices.

        Stacks the queries into one feature matrix and runs a single
        forest pass — one ``tree.predict`` per tree for the whole batch
        (reusing the iterative :meth:`RegressionTree.apply` descent)
        instead of one full forest walk per query — then splits the
        averaged predictions back per query. Bit-identical to
        ``[self.predict(q) for q in queries]``: prediction is an
        elementwise per-row map and the per-tree accumulation order is
        unchanged.
        """
        mats = [self._validate_predict_input(q) for q in queries]
        if not mats:
            return []
        lengths = [m.shape[0] for m in mats]
        nonempty = [m for m in mats if m.shape[0]]
        if not nonempty:
            return [np.zeros(0) for _ in mats]
        stacked = (
            nonempty[0] if len(nonempty) == 1 else np.concatenate(nonempty)
        )
        with span(
            "forest.predict_many",
            n_queries=len(mats),
            n_rows=int(stacked.shape[0]),
        ):
            flat = self.predict(stacked)
        out: list[np.ndarray] = []
        lo = 0
        for n in lengths:
            out.append(flat[lo : lo + n])
            lo += n
        return out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Explained variance on a held-out set (paper's validation check)."""
        return explained_variance(y, self.predict(X))

    # -- interpretation ----------------------------------------------------

    def ranked_importance(self) -> list[tuple[str, float]]:
        """Features sorted by decreasing permutation importance."""
        if self.importance_ is None:
            raise RuntimeError("fit with importance=True first")
        order = np.argsort(self.importance_)[::-1]
        return [(self.feature_names_[j], float(self.importance_[j])) for j in order]

    def top_features(self, k: int) -> list[str]:
        """Names of the ``k`` most important predictors."""
        return [name for name, _ in self.ranked_importance()[:k]]
