"""Statistics / machine-learning substrate for BlackForest.

Self-contained reimplementations (numpy only) of the R components the
paper's toolchain uses: ``randomForest`` (:class:`RandomForestRegressor`),
``prcomp``/``varimax`` (:class:`PCA`), ``earth`` (:class:`Mars`),
``glm`` (:class:`GaussianGLM`, :class:`PoissonGLM`), k-means clustering
(:class:`KMeans`), and partial dependence plots.
"""

from .cluster import KMeans
from .forest import RandomForestRegressor
from .glm import GaussianGLM, PoissonGLM, fit_best_polynomial
from .incremental import fit_from_repo, forest_state, restore_forest
from .mars import BasisFunction, HingeTerm, Mars
from .metrics import (
    explained_variance,
    mae,
    median_absolute_error,
    median_absolute_percentage_error,
    mse,
    r2_score,
    residual_deviance,
    rmse,
)
from .partial_dependence import PartialDependence, dependence_direction, partial_dependence
from .pca import PCA, FactorLoadings, varimax
from .preprocessing import (
    MatrixSanitation,
    StandardScaler,
    drop_constant_columns,
    polynomial_features,
    sanitize_matrix,
    train_test_split,
)
from .tree import RegressionTree, tree_from_dict, tree_to_dict

__all__ = [
    "fit_from_repo",
    "forest_state",
    "restore_forest",
    "tree_from_dict",
    "tree_to_dict",
    "KMeans",
    "RandomForestRegressor",
    "GaussianGLM",
    "PoissonGLM",
    "fit_best_polynomial",
    "BasisFunction",
    "HingeTerm",
    "Mars",
    "explained_variance",
    "mae",
    "median_absolute_error",
    "median_absolute_percentage_error",
    "mse",
    "r2_score",
    "residual_deviance",
    "rmse",
    "PartialDependence",
    "dependence_direction",
    "partial_dependence",
    "PCA",
    "FactorLoadings",
    "varimax",
    "MatrixSanitation",
    "StandardScaler",
    "drop_constant_columns",
    "polynomial_features",
    "sanitize_matrix",
    "train_test_split",
    "RegressionTree",
]
