"""Dataset preparation: standardization, train/test splits, polynomial features.

The BlackForest methodology randomly samples the collected profiling data
into a training set (80%) and a test set (20%); :func:`train_test_split`
implements exactly that protocol with a seedable generator so campaigns
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "StandardScaler",
    "train_test_split",
    "polynomial_features",
    "drop_constant_columns",
    "MatrixSanitation",
    "sanitize_matrix",
]


@dataclass
class MatrixSanitation:
    """What :func:`sanitize_matrix` did to make a dataset fit-able.

    Attached to fit artifacts (``BlackForestFit.degradation``) so a
    model trained on degraded data says so instead of quietly fitting
    through imputed cells.
    """

    dropped_rows: int = 0
    dropped_columns: list[str] = None  # type: ignore[assignment]
    imputed_cells: dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.dropped_columns is None:
            self.dropped_columns = []
        if self.imputed_cells is None:
            self.imputed_cells = {}

    @property
    def degraded(self) -> bool:
        return bool(self.dropped_rows or self.dropped_columns or self.imputed_cells)

    def to_dict(self) -> dict:
        return {
            "dropped_rows": self.dropped_rows,
            "dropped_columns": list(self.dropped_columns),
            "imputed_cells": dict(self.imputed_cells),
        }

    def summary(self) -> str:
        parts = []
        if self.dropped_rows:
            parts.append(f"dropped {self.dropped_rows} rows with non-finite response")
        if self.dropped_columns:
            parts.append(
                f"dropped all-non-finite columns {self.dropped_columns}"
            )
        if self.imputed_cells:
            total = sum(self.imputed_cells.values())
            parts.append(
                f"median-imputed {total} cells in {sorted(self.imputed_cells)}"
            )
        return "; ".join(parts) or "clean"


def sanitize_matrix(
    X: np.ndarray, y: np.ndarray, names: list[str]
) -> tuple[np.ndarray, np.ndarray, list[str], MatrixSanitation]:
    """Make a possibly degraded predictor matrix safe to fit.

    Degraded campaigns (runs that lost an nvprof pass, injected
    NaN/dropped counters) surface as non-finite cells. The policy, in
    order: drop rows whose *response* is non-finite (a run without a
    time cannot train anything); drop columns with no finite value at
    all (the counter simply was not collected); median-impute the
    remaining non-finite cells from the column's finite values.

    Returns ``(X, y, names, MatrixSanitation)``. For fully finite input
    the arrays are returned **unchanged** (same objects, no copies), so
    clean pipelines are bit-identical to the pre-sanitation behaviour.
    Raises ``ValueError`` when nothing trainable survives.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if np.isfinite(X).all() and np.isfinite(y).all():
        return X, y, list(names), MatrixSanitation()

    report = MatrixSanitation()
    row_ok = np.isfinite(y)
    report.dropped_rows = int((~row_ok).sum())
    X, y = X[row_ok], y[row_ok]
    if len(y) == 0:
        raise ValueError(
            "no usable rows: every run's response is non-finite "
            "(campaign too degraded to fit)"
        )

    finite = np.isfinite(X)
    col_ok = finite.any(axis=0)
    report.dropped_columns = [n for n, ok in zip(names, col_ok) if not ok]
    X = X[:, col_ok]
    finite = finite[:, col_ok]
    names = [n for n, ok in zip(names, col_ok) if ok]
    if X.shape[1] == 0:
        raise ValueError(
            "no usable predictor columns: every counter is non-finite "
            "(campaign too degraded to fit)"
        )

    if not finite.all():
        X = X.copy()
        for j, name in enumerate(names):
            bad = ~finite[:, j]
            if bad.any():
                X[bad, j] = np.median(X[finite[:, j], j])
                report.imputed_cells[name] = int(bad.sum())
    return X, y, names, report


@dataclass
class StandardScaler:
    """Column-wise standardization to zero mean / unit variance.

    Constant columns are scaled by 1.0 instead of 0.0 so transforming
    them yields zeros rather than NaNs (counters that never vary across
    a sweep are common — e.g. ``branch`` counts on branch-free kernels).
    """

    with_mean: bool = True
    with_std: bool = True

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        Z = np.asarray(Z, dtype=float)
        return Z * self.scale_ + self.mean_


def train_test_split(
    *arrays: np.ndarray,
    test_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Uniform random split into train/test partitions (default 80:20).

    Returns ``[a_train, a_test, b_train, b_test, ...]`` for the input
    arrays, all split along axis 0 with a shared permutation.
    """
    if not arrays:
        raise ValueError("at least one array required")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(rng)
    n = len(arrays[0])
    for a in arrays:
        if len(a) != n:
            raise ValueError("all arrays must share the same length")
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError(f"split leaves no training data (n={n})")
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    out: list[np.ndarray] = []
    for a in arrays:
        a = np.asarray(a)
        out.extend((a[train_idx], a[test_idx]))
    return out


def polynomial_features(
    x: np.ndarray, degree: int, include_bias: bool = True
) -> np.ndarray:
    """Vandermonde-style polynomial design matrix for a single predictor.

    Used by the GLM counter models which regress a counter on (powers of)
    the problem size.
    """
    x = np.asarray(x, dtype=float).ravel()
    if degree < 1:
        raise ValueError("degree must be >= 1")
    powers = np.arange(0 if include_bias else 1, degree + 1)
    return x[:, None] ** powers[None, :]


def drop_constant_columns(
    X: np.ndarray, names: list[str] | None = None
) -> tuple[np.ndarray, list[int], list[str] | None]:
    """Remove zero-variance columns.

    Returns the filtered matrix, the indices of the kept columns, and the
    filtered names (or None). Constant counters carry no information for
    the forest and break PCA standardization.
    """
    X = np.asarray(X, dtype=float)
    keep = np.where(X.std(axis=0) > 0.0)[0]
    kept_names = [names[i] for i in keep] if names is not None else None
    return X[:, keep], keep.tolist(), kept_names
