"""Incremental forest fits: append runs, refit only the affected trees.

At repository scale (Section 7's campaigns run to 10^4–10^5 profiled
executions) refitting a 500-tree forest from scratch after every
appended batch is the dominant cost of keeping a prediction model
current. This module makes the cheap path safe: a fitted
:class:`~repro.ml.forest.RandomForestRegressor` serializes its complete
per-tree state (``repro-forest-state/1``), a later process restores it
bit-for-bit, and :meth:`~repro.ml.forest.RandomForestRegressor.refit`
grows only the delta's worth of new trees — with every aggregate
recomputed in tree order so the result is identical at any ``n_jobs``.

The safety contract is *pinned fallback*: :func:`fit_from_repo` resumes
from saved state only when the seed, fit configuration, column names and
a SHA-256 fingerprint of the previously-seen data prefix all match.
Anything else — edited rows, changed columns, different config, a
corrupt state file — falls back to a full deterministic fit from the
pinned seed. Both paths are bit-for-bit reproducible; the state file is
an accelerator, never an input that can change the answer silently.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.obs import emit, span
from repro.parallel import resolve_n_jobs, spawn_streams

from .forest import RandomForestRegressor
from .tree import tree_from_dict, tree_to_dict

__all__ = [
    "STATE_SCHEMA",
    "forest_state",
    "restore_forest",
    "fit_from_repo",
]

#: Schema tag of the serialized incremental-fit state (registered in
#: repro.analysis.schemas).
STATE_SCHEMA = "repro-forest-state/1"


def _prefix_sha256(X: np.ndarray, y: np.ndarray) -> str:
    """Content fingerprint of the training prefix a state was built on."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(X, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(y, dtype=np.float64).tobytes())
    return h.hexdigest()


def forest_state(forest: RandomForestRegressor) -> dict:
    """Serialize a fitted forest's complete refit-capable state.

    Requires the forest to have been constructed with an **integer
    seed** — that, plus the recorded spawn count, is what lets a
    restoring process place its RNG exactly where this one left off so
    the next :meth:`refit` draws the same tree streams.
    """
    if not getattr(forest, "trees_", None):
        raise ValueError("forest is not fitted")
    if forest._seed is None:
        raise ValueError(
            "incremental state requires a forest seeded with an integer "
            "(RandomForestRegressor(rng=<int>)); an opaque Generator's "
            "position cannot be reconstructed"
        )
    trees = []
    for t, (oob_idx, pred_oob) in zip(forest.trees_, forest._tree_oob):
        trees.append({
            "tree": tree_to_dict(t),
            "impurity_decrease": t.impurity_decrease_.tolist(),
            "oob_idx": oob_idx.tolist(),
            "pred_oob": None if pred_oob is None else pred_oob.tolist(),
        })
    for entry, perm_row in zip(trees, forest._tree_perm):
        entry["perm_row"] = perm_row.tolist()
    X, y = forest._X_train, forest._y_train
    return {
        "schema": STATE_SCHEMA,
        "seed": int(forest._seed),
        "spawned": int(forest._spawned),
        "config": {
            "max_features": forest.max_features,
            "min_samples_leaf": forest.min_samples_leaf,
            "max_depth": forest.max_depth,
            "importance": forest.importance,
            "n_permutations": forest.n_permutations,
        },
        "n_features": int(forest.n_features_),
        "feature_names": list(forest.feature_names_),
        "generations": [dict(g) for g in forest._generations],
        "prefix_sha256": _prefix_sha256(X, y),
        "trees": trees,
    }


def restore_forest(
    state: dict, X: np.ndarray, y: np.ndarray
) -> RandomForestRegressor:
    """Rebuild a fitted forest from :func:`forest_state`.

    ``X``/``y`` must be the exact data the state was captured on (the
    fingerprint is checked); aggregates are recomputed from the stored
    per-tree artifacts in tree order, so the restored forest is
    bit-identical to the one serialized — including what a subsequent
    :meth:`refit` will produce.
    """
    if state.get("schema") != STATE_SCHEMA:
        raise ValueError(
            f"unknown forest-state schema {state.get('schema')!r} "
            f"(expected {STATE_SCHEMA!r})"
        )
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if _prefix_sha256(X, y) != state["prefix_sha256"]:
        raise ValueError(
            "training data does not match the serialized state's "
            "fingerprint; refusing to restore (refit from scratch instead)"
        )
    cfg = state["config"]
    n_features = int(state["n_features"])
    forest = RandomForestRegressor(
        n_trees=len(state["trees"]),
        max_features=cfg["max_features"],
        min_samples_leaf=cfg["min_samples_leaf"],
        max_depth=cfg["max_depth"],
        importance=cfg["importance"],
        n_permutations=cfg["n_permutations"],
        rng=int(state["seed"]),
    )
    # Place the RNG where the serializing process left it: spawning is
    # the only operation fit/refit perform on it, and both spawn paths
    # (Generator.spawn and SeedSequence.spawn) advance the same child
    # counter, so spawn-and-discard replays its position exactly.
    spawned = int(state["spawned"])
    if spawned:
        spawn_streams(forest._rng, spawned)
    forest._spawned = spawned

    forest.trees_ = []
    forest._tree_oob = []
    forest._tree_perm = []
    for entry in state["trees"]:
        tree = tree_from_dict(entry["tree"], n_features)
        tree.impurity_decrease_ = np.asarray(
            entry["impurity_decrease"], dtype=float
        )
        forest.trees_.append(tree)
        oob_idx = np.asarray(entry["oob_idx"], dtype=np.intp)
        pred_oob = (
            None if entry["pred_oob"] is None
            else np.asarray(entry["pred_oob"], dtype=float)
        )
        forest._tree_oob.append((oob_idx, pred_oob))
        forest._tree_perm.append(np.asarray(entry["perm_row"], dtype=float))
    forest._generations = [dict(g) for g in state["generations"]]
    forest.n_features_ = n_features
    forest.feature_names_ = list(state["feature_names"])
    forest._aggregate(X, y)
    return forest


def _write_state(path: Path, state: dict) -> None:
    text = json.dumps(state, sort_keys=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _read_state(path: Path) -> dict | None:
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(state, dict) or state.get("schema") != STATE_SCHEMA:
        return None
    return state


def fit_from_repo(
    repo,
    key,
    *,
    state_path: str | os.PathLike | None = None,
    counters=None,
    include_characteristics: bool = True,
    include_machine: bool = False,
    response: str = "time",
    n_trees: int = 500,
    seed: int = 0,
    max_features: int | None = None,
    min_samples_leaf: int = 5,
    max_depth: int | None = None,
    importance: bool = True,
    n_permutations: int = 1,
    n_jobs: int = 1,
) -> tuple[RandomForestRegressor, dict]:
    """Fit (or incrementally refit) a forest from a repository campaign.

    Loads the campaign matrix through the columnar index
    (:meth:`ProfileRepository.matrix`), then takes the cheapest safe
    path: if ``state_path`` holds a ``repro-forest-state/1`` document
    whose seed, configuration, columns and data-prefix fingerprint all
    match, the saved trees are restored and only the appended rows'
    worth of new trees is grown. Any mismatch falls back to a full fit
    from the pinned ``seed`` — both paths are bit-for-bit deterministic
    at any ``n_jobs``, so resuming can never change the answer, only
    the wall clock.

    Returns ``(forest, info)`` where ``info`` records which path ran:
    ``{"path": "full"|"resumed"|"unchanged", "n_rows", "n_new_rows",
    "n_new_trees"}``. When ``state_path`` is given, the post-fit state
    is written back for the next increment.
    """
    X, y, names = repo.matrix(
        key,
        counters=counters,
        include_characteristics=include_characteristics,
        include_machine=include_machine,
        response=response,
    )
    want_cfg = {
        "max_features": max_features,
        "min_samples_leaf": min_samples_leaf,
        "max_depth": max_depth,
        "importance": importance,
        "n_permutations": n_permutations,
    }
    info = {
        "path": "full",
        "n_rows": int(y.size),
        "n_new_rows": int(y.size),
        "n_new_trees": n_trees,
    }

    forest: RandomForestRegressor | None = None
    state = _read_state(Path(state_path)) if state_path is not None else None
    if (
        state is not None
        and int(state.get("seed", -1)) == int(seed)
        and state.get("config") == want_cfg
        and state.get("feature_names") == list(names)
    ):
        n_prev = int(state["generations"][-1]["n_rows"])
        if (
            n_prev <= y.size
            and _prefix_sha256(X[:n_prev], y[:n_prev])
            == state["prefix_sha256"]
        ):
            with span("incremental.restore", n_trees=len(state["trees"])):
                forest = restore_forest(state, X[:n_prev], y[:n_prev])
            forest.n_jobs = resolve_n_jobs(n_jobs)
            if n_prev == y.size:
                info.update(path="unchanged", n_new_rows=0, n_new_trees=0)
            else:
                before = len(forest.trees_)
                forest.refit(X, y)
                info.update(
                    path="resumed",
                    n_new_rows=int(y.size - n_prev),
                    n_new_trees=len(forest.trees_) - before,
                )

    if forest is None:
        forest = RandomForestRegressor(
            n_trees=n_trees,
            max_features=max_features,
            min_samples_leaf=min_samples_leaf,
            max_depth=max_depth,
            importance=importance,
            n_permutations=n_permutations,
            n_jobs=n_jobs,
            rng=int(seed),
        ).fit(X, y, feature_names=list(names))

    if state_path is not None:
        _write_state(Path(state_path), forest_state(forest))
    emit(
        "incremental.fit",
        campaign=str(key),
        path=info["path"],
        n_rows=info["n_rows"],
        n_new_trees=info["n_new_trees"],
    )
    return forest, info
