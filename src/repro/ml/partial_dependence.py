"""Partial dependence: the marginal effect of a predictor on the response.

The paper uses partial dependence plots (Section 4.1.1 and Figs. 2b, 3b,
4b) to determine *in which direction* an important variable affects the
predicted execution time: the plot "shows how the response changes as a
predictor ... change(s)". We also provide the monotonic-correlation
summary the paper applies to these plots ("monotonic variation over the
entire range reveals strong correlation with the response, either
positively or negatively").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PartialDependence", "partial_dependence", "dependence_direction"]


@dataclass
class PartialDependence:
    """Result of a 1-D partial dependence computation."""

    feature: str
    grid: np.ndarray
    values: np.ndarray
    #: Spearman-style rank correlation of grid vs. averaged response.
    monotonicity: float = field(default=float("nan"))
    #: Optional confidence band (paper Section 7: "integrating
    #: confidence intervals into the partial dependence plots would help
    #: interpretation"): per-grid-point quantiles over the ensemble's
    #: member predictions. None when the model is not an ensemble or the
    #: band was not requested.
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None

    def direction(self, threshold: float = 0.5) -> str:
        """Qualitative direction: 'positive', 'negative' or 'mixed'."""
        if self.monotonicity >= threshold:
            return "positive"
        if self.monotonicity <= -threshold:
            return "negative"
        return "mixed"

    @property
    def has_band(self) -> bool:
        return self.lower is not None and self.upper is not None

    def band_width(self) -> np.ndarray:
        """Pointwise width of the confidence band."""
        if not self.has_band:
            raise ValueError("no confidence band computed")
        return self.upper - self.lower


def _rank(a: np.ndarray) -> np.ndarray:
    """Average ranks (ties broken by averaging), for Spearman correlation."""
    order = np.argsort(a, kind="stable")
    ranks = np.empty(a.size, dtype=float)
    ranks[order] = np.arange(a.size, dtype=float)
    # Average ranks over tied groups.
    sorted_a = a[order]
    i = 0
    while i < a.size:
        j = i
        while j + 1 < a.size and sorted_a[j + 1] == sorted_a[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + j)
        i = j + 1
    return ranks


def _spearman(x: np.ndarray, y: np.ndarray) -> float:
    rx, ry = _rank(x), _rank(y)
    sx, sy = rx.std(), ry.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((rx - rx.mean()) * (ry - ry.mean())) / (sx * sy))


def partial_dependence(
    model,
    X: np.ndarray,
    feature: int,
    grid_resolution: int = 20,
    feature_name: str | None = None,
    percentile_clip: tuple[float, float] = (0.0, 100.0),
    confidence: float | None = None,
) -> PartialDependence:
    """Average model prediction as one feature sweeps a value grid.

    For each grid value ``v`` the feature column is overwritten with
    ``v`` on a copy of the full dataset and the model's predictions are
    averaged — the standard Friedman partial-dependence estimator.

    Parameters
    ----------
    model:
        Any object with ``predict(X) -> y``.
    X:
        Background dataset (typically the training predictors).
    feature:
        Column index to sweep.
    grid_resolution:
        Number of grid points, taken at evenly spaced quantiles of the
        observed feature values (so empty value ranges are not probed).
    percentile_clip:
        Percentile window of the feature's empirical distribution used
        to bound the grid, e.g. ``(5, 95)`` to avoid extrapolating tails.
    confidence:
        When set (e.g. 0.9) and the model is a tree ensemble (exposes
        ``trees_``), a per-grid-point confidence band is computed from
        the spread of the individual trees' averaged predictions — the
        Section 7 "confidence intervals into the partial dependence
        plots" improvement.
    """
    if confidence is not None and not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if not 0 <= feature < X.shape[1]:
        raise ValueError(f"feature index {feature} out of range")
    if grid_resolution < 2:
        raise ValueError("grid_resolution must be >= 2")

    col = X[:, feature]
    lo, hi = np.percentile(col, percentile_clip)
    quantiles = np.linspace(*percentile_clip, grid_resolution)
    grid = np.unique(np.percentile(col, quantiles))
    grid = grid[(grid >= lo) & (grid <= hi)]
    if grid.size < 2:  # near-constant feature: flat dependence
        grid = np.array([col.min(), col.max()] if np.ptp(col) > 0 else [col[0]])

    values = np.empty(grid.size)
    lower = upper = None
    trees = getattr(model, "trees_", None) if confidence is not None else None
    if trees:
        lower = np.empty(grid.size)
        upper = np.empty(grid.size)
        alpha = (1.0 - confidence) / 2.0

    work = X.copy()
    for i, v in enumerate(grid):
        work[:, feature] = v
        if trees:
            per_tree = np.array([t.predict(work).mean() for t in trees])
            values[i] = float(per_tree.mean())
            lower[i] = float(np.quantile(per_tree, alpha))
            upper[i] = float(np.quantile(per_tree, 1.0 - alpha))
        else:
            values[i] = float(np.mean(model.predict(work)))

    mono = _spearman(grid, values) if grid.size > 1 else 0.0
    name = feature_name if feature_name is not None else f"x{feature}"
    return PartialDependence(
        feature=name, grid=grid, values=values, monotonicity=mono,
        lower=lower, upper=upper,
    )


def dependence_direction(
    model, X: np.ndarray, feature: int, **kwargs
) -> str:
    """Convenience wrapper returning only the qualitative direction."""
    return partial_dependence(model, X, feature, **kwargs).direction()
