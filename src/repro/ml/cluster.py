"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

The paper's toolchain description (Section 4.3) lists "randomForest for
RF and clustering" among its R components; BlackForest uses clustering
to group profiling runs with similar counter signatures (e.g. separating
kernel-launch regimes before modeling). This module provides the
clustering substrate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """Standard k-means with k-means++ initialization and restarts."""

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-8,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self._rng = np.random.default_rng(rng)

    def _init_centers(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[self._rng.integers(n)]
        d2 = np.sum((X - centers[0]) ** 2, axis=1)
        for k in range(1, self.n_clusters):
            total = d2.sum()
            if total <= 0:  # all points identical to chosen centers
                centers[k:] = X[self._rng.integers(n, size=self.n_clusters - k)]
                break
            probs = d2 / total
            centers[k] = X[self._rng.choice(n, p=probs)]
            d2 = np.minimum(d2, np.sum((X - centers[k]) ** 2, axis=1))
        return centers

    @staticmethod
    def _assign(X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, float]:
        # Pairwise squared distances via the expansion trick (no copies of X).
        d2 = (
            np.sum(X**2, axis=1)[:, None]
            - 2.0 * X @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        labels = np.argmin(d2, axis=1)
        inertia = float(np.sum(d2[np.arange(X.shape[0]), labels]))
        return labels, max(inertia, 0.0)

    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n = X.shape[0]
        if n < self.n_clusters:
            raise ValueError("fewer observations than clusters")

        best_inertia = np.inf
        best_labels = None
        best_centers = None
        for _ in range(self.n_init):
            centers = self._init_centers(X)
            labels, inertia = self._assign(X, centers)
            for _ in range(self.max_iter):
                new_centers = centers.copy()
                for k in range(self.n_clusters):
                    members = X[labels == k]
                    if members.size:
                        new_centers[k] = members.mean(axis=0)
                labels, new_inertia = self._assign(X, new_centers)
                shift = float(np.max(np.abs(new_centers - centers)))
                centers = new_centers
                if shift < self.tol or abs(inertia - new_inertia) < self.tol:
                    inertia = new_inertia
                    break
                inertia = new_inertia
            if inertia < best_inertia:
                best_inertia, best_labels, best_centers = inertia, labels, centers

        self.cluster_centers_ = best_centers
        self.labels_ = best_labels
        self.inertia_ = best_inertia
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        labels, _ = self._assign(np.asarray(X, dtype=float), self.cluster_centers_)
        return labels
