"""CART regression trees (Breiman et al.), the building block of the forest.

Implements the greedy variance-minimizing binary splitting described in
Section 4.1.1 of the paper: at each node the algorithm scans candidate
(variable, split point) pairs and picks the pair minimizing the summed
within-region sum of squares (paper Eq. 3), with the region prediction
being the region mean (paper Eq. 1).

The split search is vectorized *across candidate features*: a node
gathers its candidate block as one matrix, sorts every column with a
single stable argsort, and evaluates all split positions of all
candidates with 2-D prefix sums — one set of numpy calls per block
instead of per feature. The selection (examined-candidate counting,
``mtry`` stopping, strict-improvement tie-breaking) replays the scalar
algorithm exactly, so a fitted tree is bit-for-bit identical to the
per-feature reference implementation
(:class:`repro.ml._reference.ReferenceRegressionTree`) under the same
RNG state — a property the equivalence tests pin.

Prediction is an iterative array-based descent: a node-index array is
advanced one tree level per iteration for all rows at once
(:meth:`RegressionTree.apply`), with no per-sample recursion.
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics as _metrics

__all__ = ["RegressionTree", "tree_to_dict", "tree_from_dict"]

_LEAF = -1

# Tiny read-only helpers reused across every node of every tree: the
# per-node numpy-call overhead is what the block split scan exists to
# amortize, so even arange allocations are worth caching.
_ARANGE_CACHE: dict[int, np.ndarray] = {}
_LEFT_COUNT_CACHE: dict[int, np.ndarray] = {}


def _cached_arange(k: int) -> np.ndarray:
    out = _ARANGE_CACHE.get(k)
    if out is None:
        out = np.arange(k)
        out.setflags(write=False)
        _ARANGE_CACHE[k] = out
        if len(_ARANGE_CACHE) > 4096:
            _ARANGE_CACHE.clear()
    return out


def _cached_left_counts(n: int) -> np.ndarray:
    """Column vector [1.0, 2.0, ..., n-1] of left-region sizes."""
    out = _LEFT_COUNT_CACHE.get(n)
    if out is None:
        out = (np.arange(n - 1) + 1.0)[:, None]
        out.setflags(write=False)
        _LEFT_COUNT_CACHE[n] = out
        if len(_LEFT_COUNT_CACHE) > 4096:
            _LEFT_COUNT_CACHE.clear()
    return out


def _best_split_for_feature(
    x: np.ndarray, y: np.ndarray, min_samples_leaf: int
) -> tuple[float, float, float] | None:
    """Best split of sorted-scannable feature ``x`` against response ``y``.

    Returns ``(sse_total, threshold, improvement_proxy)`` for the best
    valid split, or None when no split separates distinct values under
    the leaf-size constraint. ``sse_total`` is the post-split sum of the
    two regions' sums of squared deviations.

    Scalar single-feature form of :func:`_best_splits_for_block`; kept
    for the reference implementation and as the test oracle.
    """
    n = x.size
    order = np.argsort(x, kind="stable")
    xs = x[order]
    ys = y[order]

    # Prefix sums let us evaluate every split position in O(1).
    csum = np.cumsum(ys)
    csum2 = np.cumsum(ys * ys)
    total_sum = csum[-1]
    total_sum2 = csum2[-1]

    # Candidate split after position i (0-based): left = [0..i], right = [i+1..].
    i = np.arange(n - 1)
    n_left = i + 1.0
    n_right = n - n_left
    valid = (
        (xs[:-1] != xs[1:])
        & (n_left >= min_samples_leaf)
        & (n_right >= min_samples_leaf)
    )
    if not np.any(valid):
        return None

    sum_left = csum[:-1]
    sum2_left = csum2[:-1]
    sse_left = sum2_left - sum_left * sum_left / n_left
    sum_right = total_sum - sum_left
    sse_right = (total_sum2 - sum2_left) - sum_right * sum_right / n_right
    sse = sse_left + sse_right
    sse[~valid] = np.inf

    best = int(np.argmin(sse))
    threshold = 0.5 * (xs[best] + xs[best + 1])
    # Guard against midpoint rounding onto the right value for adjacent floats.
    if threshold <= xs[best]:
        threshold = xs[best]
    return float(sse[best]), float(threshold), float(total_sum2 - total_sum**2 / n)


def _best_splits_for_block(
    Xb: np.ndarray, y: np.ndarray, min_samples_leaf: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Best split of every column of ``Xb`` against ``y``, in one pass.

    Returns ``(sse, threshold, constant, has_split)`` arrays of length
    ``Xb.shape[1]``. Each column's numbers are bit-identical to
    :func:`_best_split_for_feature` on that column: the stable argsort,
    prefix sums and SSE arithmetic run per column in the same order,
    only batched along axis 1.
    """
    n, b = Xb.shape
    if n < 2:
        return (
            np.full(b, np.inf),
            np.full(b, np.nan),
            np.ones(b, dtype=bool),
            np.zeros(b, dtype=bool),
        )

    # The leaf-size constraint makes split positions outside
    # [msl-1, n-msl) invalid regardless of the data, so the scan only
    # materializes that window — near the leaves this is a single row.
    lo_i = min_samples_leaf - 1
    hi_i = n - min_samples_leaf
    if hi_i <= lo_i:
        constant = Xb.max(axis=0) == Xb.min(axis=0)
        return (
            np.full(b, np.inf),
            np.full(b, np.nan),
            constant,
            np.zeros(b, dtype=bool),
        )

    cols = _cached_arange(b)
    order = Xb.argsort(axis=0, kind="stable")
    xs = Xb[order, cols]
    ys = y[order]

    constant = xs[0] == xs[-1]

    csum = ys.cumsum(axis=0)
    csum2 = (ys * ys).cumsum(axis=0)
    total_sum = csum[-1]
    total_sum2 = csum2[-1]

    valid = xs[lo_i:hi_i] != xs[lo_i + 1 : hi_i + 1]
    has_split = valid.any(axis=0)

    sum_left = csum[lo_i:hi_i]
    sum2_left = csum2[lo_i:hi_i]
    n_left = _cached_left_counts(n)[lo_i:hi_i]
    n_right = n - n_left
    sse = sum2_left - sum_left * sum_left / n_left
    sum_right = total_sum - sum_left
    sse += (total_sum2 - sum2_left) - sum_right * sum_right / n_right
    sse[~valid] = np.inf

    best = sse.argmin(axis=0)
    lo = xs[best + lo_i, cols]
    thr = 0.5 * (lo + xs[best + lo_i + 1, cols])
    # Guard against midpoint rounding onto the right value for adjacent floats.
    thr = np.where(thr <= lo, lo, thr)

    sse_best = np.where(has_split, sse[best, cols], np.inf)
    thr_best = np.where(has_split, thr, np.nan)
    return sse_best, thr_best, constant, has_split


class RegressionTree:
    """A single unpruned CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; None grows until the stopping rules fire.
    min_samples_leaf:
        Minimum observations in a terminal node (R's ``nodesize``,
        default 5 for regression forests per the paper's Section 4.1.1).
    min_samples_split:
        Minimum observations required to attempt a split.
    max_features:
        Number of features examined per node (``mtry``). None uses all.
    rng:
        Generator or seed controlling the per-node feature subsample.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 5,
        min_samples_split: int | None = None,
        max_features: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = (
            min_samples_split if min_samples_split is not None else 2 * min_samples_leaf
        )
        self.max_features = max_features
        self._rng = np.random.default_rng(rng)

    # -- fitting ---------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")

        n, p = X.shape
        mtry = p if self.max_features is None else min(self.max_features, p)
        if mtry < 1:
            raise ValueError("max_features must be >= 1")

        # Growable node arrays; children indices of _LEAF mark terminals.
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_samples: list[int] = []
        impurity_decrease = np.zeros(p)

        stack: list[tuple[np.ndarray, int, int]] = []  # (indices, node_id, depth)

        def new_node(idx: np.ndarray) -> int:
            node_id = len(feature)
            feature.append(_LEAF)
            threshold.append(np.nan)
            left.append(_LEAF)
            right.append(_LEAF)
            # add.reduce is ndarray.mean's internal summation (pairwise
            # umr_sum), so this equals y[idx].mean() bit for bit while
            # skipping the wrapper overhead — this runs once per node.
            value.append(np.add.reduce(y[idx]) / idx.size)
            n_samples.append(int(idx.size))
            return node_id

        root = new_node(np.arange(n))
        stack.append((np.arange(n), root, 0))

        while stack:
            idx, node_id, depth = stack.pop()
            if (
                idx.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
            ):
                continue
            y_node = y[idx]
            if y_node.max() == y_node.min():
                continue  # pure node

            dev = y_node - np.add.reduce(y_node) / y_node.size
            node_sse = float(np.add.reduce(dev * dev))
            Xn = X.take(idx, axis=0)
            candidates = self._rng.permutation(p)
            best_sse = np.inf
            best_feat = _LEAF
            best_thr = np.nan
            examined = 0
            # Candidates are evaluated in blocks: mtry counts *examined*
            # (non-constant) candidates, mirroring R's behaviour of
            # retrying when a drawn variable cannot split, so the first
            # block holds mtry candidates and follow-up blocks cover the
            # constant-feature / unsplittable-feature retries.
            i = 0
            while i < p and not (examined >= mtry and best_feat != _LEAF):
                block = candidates[i : i + max(mtry - examined, 1)]
                i += block.size
                sse_b, thr_b, const_b, has_b = _best_splits_for_block(
                    Xn.take(block, axis=1), y_node, self.min_samples_leaf
                )
                const_b = const_b.tolist()
                has_b = has_b.tolist()
                sse_l = sse_b.tolist()
                for k, j in enumerate(block.tolist()):
                    if const_b[k]:
                        continue  # constant feature in this node
                    examined += 1
                    if has_b[k] and sse_l[k] < best_sse:
                        best_sse, best_thr = sse_l[k], float(thr_b[k])
                        best_feat = j
                    if examined >= mtry and best_feat != _LEAF:
                        break

            if best_feat == _LEAF or best_sse >= node_sse:
                continue

            mask = Xn[:, best_feat] <= best_thr
            left_idx, right_idx = idx[mask], idx[~mask]
            if left_idx.size == 0 or right_idx.size == 0:
                continue

            feature[node_id] = best_feat
            threshold[node_id] = best_thr
            impurity_decrease[best_feat] += node_sse - best_sse
            lid = new_node(left_idx)
            rid = new_node(right_idx)
            left[node_id], right[node_id] = lid, rid
            stack.append((left_idx, lid, depth + 1))
            stack.append((right_idx, rid, depth + 1))

        self.n_features_ = p
        self.feature_ = np.asarray(feature, dtype=np.intp)
        self.threshold_ = np.asarray(threshold, dtype=float)
        self.left_ = np.asarray(left, dtype=np.intp)
        self.right_ = np.asarray(right, dtype=np.intp)
        self.value_ = np.asarray(value, dtype=float)
        self.n_node_samples_ = np.asarray(n_samples, dtype=np.intp)
        self.impurity_decrease_ = impurity_decrease
        _metrics.inc("tree.nodes", float(self.feature_.size))
        _metrics.inc("tree.fits")
        return self

    # -- prediction ------------------------------------------------------

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by every row of ``X`` (vectorized descent).

        Maintains a node-index array and a shrinking active-row index
        array; each iteration advances every still-internal row one
        level, so the loop runs ``depth`` times regardless of row count.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} columns, got {X.shape}"
            )
        node = np.zeros(X.shape[0], dtype=np.intp)
        idx = np.flatnonzero(self.feature_[node] != _LEAF)
        while idx.size:
            cur = node[idx]
            go_left = X[idx, self.feature_[cur]] <= self.threshold_[cur]
            nxt = np.where(go_left, self.left_[cur], self.right_[cur])
            node[idx] = nxt
            idx = idx[self.feature_[nxt] != _LEAF]
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted response: mean of the training responses in the leaf."""
        return self.value_[self.apply(X)]

    # -- introspection ----------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.feature_.size)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature_ == _LEAF))

    @property
    def depth(self) -> int:
        depth = np.zeros(self.n_nodes, dtype=int)
        for node_id in range(self.n_nodes):
            if self.feature_[node_id] != _LEAF:
                for child in (self.left_[node_id], self.right_[node_id]):
                    depth[child] = depth[node_id] + 1
        return int(depth.max()) if self.n_nodes else 0


# -- serialization --------------------------------------------------------


def tree_to_dict(tree: RegressionTree) -> dict:
    """A fitted tree's node arrays as a strict-JSON-safe dict.

    Leaf thresholds (NaN internally, never read by the descent) are
    written as ``null`` so the document carries no ``NaN`` tokens.
    Floats survive ``json`` round-trips exactly (``repr`` encoding), so
    a restored tree's predictions are bit-identical — the contract both
    the serve artifact (``repro-fit/1``) and incremental-fit state
    (``repro-forest-state/1``) build on.
    """
    import math

    thresholds = [
        None if math.isnan(t) else float(t)
        for t in tree.threshold_.tolist()
    ]
    return {
        "feature": tree.feature_.tolist(),
        "threshold": thresholds,
        "left": tree.left_.tolist(),
        "right": tree.right_.tolist(),
        "value": tree.value_.tolist(),
        "n_node_samples": tree.n_node_samples_.tolist(),
    }


def tree_from_dict(data: dict, n_features: int) -> RegressionTree:
    """Rebuild a predict-capable tree from :func:`tree_to_dict`.

    ``impurity_decrease_`` does not travel in the node-array dict; it is
    restored as zeros (callers that need it — incremental-fit state —
    persist it separately).
    """
    tree = RegressionTree()
    tree.n_features_ = n_features
    tree.feature_ = np.asarray(data["feature"], dtype=np.intp)
    tree.threshold_ = np.asarray(
        [np.nan if t is None else t for t in data["threshold"]], dtype=float
    )
    tree.left_ = np.asarray(data["left"], dtype=np.intp)
    tree.right_ = np.asarray(data["right"], dtype=np.intp)
    tree.value_ = np.asarray(data["value"], dtype=float)
    tree.n_node_samples_ = np.asarray(
        data.get("n_node_samples", [0] * len(data["feature"])), dtype=np.intp
    )
    tree.impurity_decrease_ = np.zeros(n_features)
    return tree
