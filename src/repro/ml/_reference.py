"""Pre-vectorization CART/forest implementations, kept on purpose.

These are the scalar hot paths that :mod:`repro.ml.tree` and
:mod:`repro.ml.forest` replaced with the block-vectorized split scan,
the batched OOB-permutation predict and the spawned-stream parallel
fit. They survive for two reasons:

* **correctness oracles** — the equivalence tests pin the fast
  implementations against these on randomized datasets
  (``tests/ml/test_forest_parallel.py``);
* **benchmark baselines** — ``repro bench`` times them against the fast
  paths and records both in ``BENCH_core.json``, so speedups are
  measured against real code, not remembered numbers.

They are *not* part of the public API and receive no new features.
"""

from __future__ import annotations

import numpy as np

from .metrics import explained_variance, mse
from .tree import _LEAF, _best_split_for_feature

__all__ = ["ReferenceRegressionTree", "ReferenceRandomForestRegressor"]


class ReferenceRegressionTree:
    """The seed repo's per-feature-loop CART fit (scalar split scan)."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 5,
        min_samples_split: int | None = None,
        max_features: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = (
            min_samples_split if min_samples_split is not None else 2 * min_samples_leaf
        )
        self.max_features = max_features
        self._rng = np.random.default_rng(rng)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ReferenceRegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")

        n, p = X.shape
        mtry = p if self.max_features is None else min(self.max_features, p)
        if mtry < 1:
            raise ValueError("max_features must be >= 1")

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_samples: list[int] = []
        impurity_decrease = np.zeros(p)

        stack: list[tuple[np.ndarray, int, int]] = []

        def new_node(idx: np.ndarray) -> int:
            node_id = len(feature)
            feature.append(_LEAF)
            threshold.append(np.nan)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(float(y[idx].mean()))
            n_samples.append(int(idx.size))
            return node_id

        root = new_node(np.arange(n))
        stack.append((np.arange(n), root, 0))

        while stack:
            idx, node_id, depth = stack.pop()
            if (
                idx.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
            ):
                continue
            y_node = y[idx]
            if np.ptp(y_node) == 0.0:
                continue

            node_sse = float(np.sum((y_node - y_node.mean()) ** 2))
            candidates = self._rng.permutation(p)
            best_sse = np.inf
            best_feat = _LEAF
            best_thr = np.nan
            examined = 0
            for j in candidates:
                col = X[idx, j]
                if col[0] == col[-1] and np.ptp(col) == 0.0:
                    continue
                res = _best_split_for_feature(col, y_node, self.min_samples_leaf)
                examined += 1
                if res is not None and res[0] < best_sse:
                    best_sse, best_thr = res[0], res[1]
                    best_feat = int(j)
                if examined >= mtry and best_feat != _LEAF:
                    break

            if best_feat == _LEAF or best_sse >= node_sse:
                continue

            mask = X[idx, best_feat] <= best_thr
            left_idx, right_idx = idx[mask], idx[~mask]
            if left_idx.size == 0 or right_idx.size == 0:
                continue

            feature[node_id] = best_feat
            threshold[node_id] = best_thr
            impurity_decrease[best_feat] += node_sse - best_sse
            lid = new_node(left_idx)
            rid = new_node(right_idx)
            left[node_id], right[node_id] = lid, rid
            stack.append((left_idx, lid, depth + 1))
            stack.append((right_idx, rid, depth + 1))

        self.n_features_ = p
        self.feature_ = np.asarray(feature, dtype=np.intp)
        self.threshold_ = np.asarray(threshold, dtype=float)
        self.left_ = np.asarray(left, dtype=np.intp)
        self.right_ = np.asarray(right, dtype=np.intp)
        self.value_ = np.asarray(value, dtype=float)
        self.n_node_samples_ = np.asarray(n_samples, dtype=np.intp)
        self.impurity_decrease_ = impurity_decrease
        return self

    def apply(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} columns, got {X.shape}"
            )
        node = np.zeros(X.shape[0], dtype=np.intp)
        active = self.feature_[node] != _LEAF
        while np.any(active):
            idx = np.where(active)[0]
            cur = node[idx]
            go_left = X[idx, self.feature_[cur]] <= self.threshold_[cur]
            node[idx] = np.where(go_left, self.left_[cur], self.right_[cur])
            active[idx] = self.feature_[node[idx]] != _LEAF
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.value_[self.apply(X)]


class ReferenceRandomForestRegressor:
    """The seed repo's forest fit: one shared RNG stream, per-variable
    OOB permutation loop with one ``tree.predict`` call per
    (variable, repetition)."""

    def __init__(
        self,
        n_trees: int = 500,
        max_features: int | None = None,
        min_samples_leaf: int = 5,
        max_depth: int | None = None,
        importance: bool = True,
        n_permutations: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if n_permutations < 1:
            raise ValueError("n_permutations must be >= 1")
        self.n_trees = n_trees
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.importance = importance
        self.n_permutations = n_permutations
        self._rng = np.random.default_rng(rng)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: list[str] | None = None,
    ) -> "ReferenceRandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        n, p = X.shape
        mtry = self.max_features if self.max_features is not None else max(p // 3, 1)

        self.trees_: list[ReferenceRegressionTree] = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n, dtype=np.intp)
        perm_delta = np.zeros((self.n_trees, p)) if self.importance else None

        for t in range(self.n_trees):
            boot = self._rng.integers(0, n, size=n)
            oob_mask = np.ones(n, dtype=bool)
            oob_mask[boot] = False
            tree = ReferenceRegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=mtry,
                rng=self._rng,
            ).fit(X[boot], y[boot])
            self.trees_.append(tree)

            oob_idx = np.where(oob_mask)[0]
            if oob_idx.size == 0:
                continue
            X_oob = X[oob_idx]
            pred_oob = tree.predict(X_oob)
            oob_sum[oob_idx] += pred_oob
            oob_count[oob_idx] += 1

            if self.importance:
                base_err = np.mean((pred_oob - y[oob_idx]) ** 2)
                for j in range(p):
                    col = X_oob[:, j]
                    if np.ptp(col) == 0.0:
                        continue
                    delta = 0.0
                    X_perm = X_oob.copy()
                    for _ in range(self.n_permutations):
                        X_perm[:, j] = self._rng.permutation(col)
                        err = np.mean((tree.predict(X_perm) - y[oob_idx]) ** 2)
                        delta += err - base_err
                    perm_delta[t, j] = delta / self.n_permutations

        self.n_features_ = p
        self.feature_names_ = (
            list(feature_names)
            if feature_names is not None
            else [f"x{j}" for j in range(p)]
        )

        seen = oob_count > 0
        self.oob_prediction_ = np.full(n, np.nan)
        self.oob_prediction_[seen] = oob_sum[seen] / oob_count[seen]
        if np.any(seen):
            self.oob_mse_ = mse(y[seen], self.oob_prediction_[seen])
            self.oob_explained_variance_ = explained_variance(
                y[seen], self.oob_prediction_[seen]
            )
        else:
            self.oob_mse_ = np.nan
            self.oob_explained_variance_ = np.nan

        if self.importance:
            mean_delta = perm_delta.mean(axis=0)
            sd = perm_delta.std(axis=0, ddof=1) if self.n_trees > 1 else np.ones(p)
            sd = np.where(sd > 0.0, sd, 1.0)
            self.importance_ = mean_delta / (sd / np.sqrt(self.n_trees))
            self.importance_raw_ = mean_delta
        else:
            self.importance_ = None
            self.importance_raw_ = None

        purity = np.zeros(p)
        for tree in self.trees_:
            purity += tree.impurity_decrease_
        self.impurity_importance_ = purity / self.n_trees
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict(X)
        return acc / len(self.trees_)
