"""Multivariate adaptive regression splines (MARS, Friedman 1991).

Reimplements the subset of R's ``earth`` package the paper uses to model
performance counters in terms of problem characteristics (Section 4.2
"Results interpretation" and Fig. 6c, where the NW counter models are
"built using *earth* ... with average R-squared of 0.99").

The model is paper Eq. 4: ``f(x) = sum_i c_i * B_i(x)`` where each
``B_i`` is the intercept, a hinge ``max(x_v - t, 0)`` / ``max(t - x_v, 0)``,
or a product of hinges (interactions). Fitting is the classic two-pass
procedure:

* **forward pass** — greedily add hinge-function *pairs* (both signs of
  a (parent basis, variable, knot) candidate) minimizing the residual
  sum of squares, until ``max_terms`` is reached or the relative RSS
  improvement stalls;
* **backward pass** — prune terms one at a time, keeping the subset with
  the best generalized cross-validation (GCV) score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import r2_score

__all__ = ["Mars", "HingeTerm", "BasisFunction"]


@dataclass(frozen=True)
class HingeTerm:
    """One hinge factor ``max(sign * (x[var] - knot), 0)``."""

    var: int
    knot: float
    sign: int  # +1 -> max(x - knot, 0); -1 -> max(knot - x, 0)

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return np.maximum(self.sign * (X[:, self.var] - self.knot), 0.0)

    def describe(self, names: list[str]) -> str:
        name = names[self.var]
        if self.sign > 0:
            return f"h({name} - {self.knot:g})"
        return f"h({self.knot:g} - {name})"


@dataclass(frozen=True)
class BasisFunction:
    """Product of hinge terms; the empty product is the intercept."""

    terms: tuple[HingeTerm, ...] = ()

    @property
    def degree(self) -> int:
        return len(self.terms)

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        out = np.ones(X.shape[0])
        for term in self.terms:
            out *= term.evaluate(X)
        return out

    def involves(self, var: int) -> bool:
        return any(t.var == var for t in self.terms)

    def extended(self, term: HingeTerm) -> "BasisFunction":
        return BasisFunction(self.terms + (term,))

    def describe(self, names: list[str]) -> str:
        if not self.terms:
            return "(intercept)"
        return " * ".join(t.describe(names) for t in self.terms)


def _gcv(rss: float, n: int, n_terms: int, penalty: float) -> float:
    """Generalized cross-validation criterion (Friedman 1991, Eq. 30)."""
    c = n_terms + penalty * max(n_terms - 1, 0) / 2.0
    denom = (1.0 - c / n) ** 2
    if denom <= 0.0:
        return np.inf
    return (rss / n) / denom


def _lstsq_rss(B: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, float]:
    coef, _, _, _ = np.linalg.lstsq(B, y, rcond=None)
    resid = y - B @ coef
    return coef, float(resid @ resid)


class Mars:
    """MARS regression model.

    Parameters
    ----------
    max_terms:
        Cap on basis functions after the forward pass (including the
        intercept). ``earth`` default is ``min(200, max(20, 2p+1)) + 1``;
        a small fixed default suits the paper's <=129-sample campaigns.
    max_degree:
        Maximum interaction degree (1 = additive model, ``earth``
        default).
    penalty:
        GCV knot penalty; ``earth`` uses 3 for interactions, 2 additive.
        None selects by ``max_degree``.
    n_knots:
        Candidate knots per variable, taken at evenly spaced quantiles
        of the observed values (None = every distinct value, like earth's
        ``minspan=1`` on small data).
    min_rss_decrease:
        Relative RSS improvement below which the forward pass stops.
    """

    def __init__(
        self,
        max_terms: int = 21,
        max_degree: int = 1,
        penalty: float | None = None,
        n_knots: int | None = 32,
        min_rss_decrease: float = 1e-5,
    ) -> None:
        if max_terms < 1:
            raise ValueError("max_terms must be >= 1")
        if max_degree < 1:
            raise ValueError("max_degree must be >= 1")
        self.max_terms = max_terms
        self.max_degree = max_degree
        self.penalty = penalty if penalty is not None else (2.0 if max_degree == 1 else 3.0)
        self.n_knots = n_knots
        self.min_rss_decrease = min_rss_decrease

    # -- fitting ---------------------------------------------------------

    def _candidate_knots(self, col: np.ndarray) -> np.ndarray:
        values = np.unique(col)
        if values.size <= 2:
            return values[:-1] if values.size == 2 else np.empty(0)
        # Knots at interior values; quantile-subsample when many.
        interior = values[:-1]
        if self.n_knots is not None and interior.size > self.n_knots:
            q = np.linspace(0, 100, self.n_knots)
            interior = np.unique(np.percentile(interior, q, method="nearest"))
        return interior

    def fit(
        self, X: np.ndarray, y: np.ndarray, names: list[str] | None = None
    ) -> "Mars":
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        y = np.asarray(y, dtype=float).ravel()
        n, p = X.shape
        if n != y.size:
            raise ValueError("X and y length mismatch")
        if n < 3:
            raise ValueError("need at least 3 observations")
        self.names_ = list(names) if names is not None else [f"x{j}" for j in range(p)]
        if len(self.names_) != p:
            raise ValueError("names length mismatch")

        knots = [self._candidate_knots(X[:, j]) for j in range(p)]

        basis: list[BasisFunction] = [BasisFunction()]
        B = np.ones((n, 1))
        coef, rss = _lstsq_rss(B, y)
        baseline_rss = rss

        # ---- forward pass ----
        while len(basis) + 2 <= self.max_terms:
            if rss <= 1e-12 * max(baseline_rss, 1.0):
                break  # already an (essentially) exact fit
            best = None  # (rss, parent_idx, term_plus, term_minus, B_new)
            for parent_idx, parent in enumerate(basis):
                if parent.degree >= self.max_degree:
                    continue
                parent_col = B[:, parent_idx]
                active = parent_col > 0.0
                if np.count_nonzero(active) < 3:
                    continue
                for var in range(p):
                    if parent.involves(var):
                        continue
                    for knot in knots[var]:
                        tp = HingeTerm(var, float(knot), +1)
                        tm = HingeTerm(var, float(knot), -1)
                        col_p = parent_col * tp.evaluate(X)
                        col_m = parent_col * tm.evaluate(X)
                        if np.ptp(col_p) == 0.0 and np.ptp(col_m) == 0.0:
                            continue
                        B_new = np.column_stack([B, col_p, col_m])
                        _, rss_new = _lstsq_rss(B_new, y)
                        if best is None or rss_new < best[0]:
                            best = (rss_new, parent_idx, tp, tm, B_new)
            if best is None:
                break
            rss_new, parent_idx, tp, tm, B_new = best
            denom = rss if rss > 0 else max(baseline_rss, np.finfo(float).tiny)
            if rss - rss_new < self.min_rss_decrease * denom:
                break
            parent = basis[parent_idx]
            basis.extend([parent.extended(tp), parent.extended(tm)])
            B = B_new
            rss = rss_new
            if rss <= 1e-12 * max(baseline_rss, 1.0):
                break

        # ---- backward pass ----
        keep = list(range(len(basis)))
        coef, rss = _lstsq_rss(B[:, keep], y)
        best_keep = list(keep)
        best_gcv = _gcv(rss, n, len(keep), self.penalty)
        while len(keep) > 1:
            trial_best = None  # (gcv, removed_position)
            for pos in range(1, len(keep)):  # never drop the intercept
                subset = keep[:pos] + keep[pos + 1 :]
                _, rss_t = _lstsq_rss(B[:, subset], y)
                g = _gcv(rss_t, n, len(subset), self.penalty)
                if trial_best is None or g < trial_best[0]:
                    trial_best = (g, pos)
            g, pos = trial_best
            del keep[pos]
            # <= : prefer the smaller model on ties (constant responses)
            if g <= best_gcv:
                best_gcv = g
                best_keep = list(keep)

        self.basis_ = [basis[i] for i in best_keep]
        B_final = B[:, best_keep]
        self.coef_, rss_final = _lstsq_rss(B_final, y)
        self.gcv_ = _gcv(rss_final, n, len(best_keep), self.penalty)
        self.rss_ = rss_final
        fitted = B_final @ self.coef_
        self.r_squared_ = r2_score(y, fitted)
        # GRSq, earth's GCV-normalized R^2.
        gcv_null = _gcv(float(np.sum((y - y.mean()) ** 2)), n, 1, self.penalty)
        self.grsq_ = 1.0 - self.gcv_ / gcv_null if gcv_null > 0 else np.nan
        return self

    # -- prediction ------------------------------------------------------

    def _design(self, X: np.ndarray) -> np.ndarray:
        return np.column_stack([b.evaluate(X) for b in self.basis_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        if X.shape[1] != len(self.names_):
            raise ValueError(
                f"X must have {len(self.names_)} columns, got {X.shape[1]}"
            )
        return self._design(X) @ self.coef_

    # -- introspection ----------------------------------------------------

    def summary(self) -> str:
        """earth-style text summary of the selected model."""
        lines = ["MARS model:"]
        for b, c in zip(self.basis_, self.coef_):
            lines.append(f"  {c:+.6g} * {b.describe(self.names_)}")
        lines.append(
            f"  terms={len(self.basis_)}  RSS={self.rss_:.6g}  "
            f"GCV={self.gcv_:.6g}  R^2={self.r_squared_:.4f}  GRSq={self.grsq_:.4f}"
        )
        return "\n".join(lines)

    @property
    def n_terms(self) -> int:
        return len(self.basis_)
