"""Regression quality metrics used throughout the BlackForest pipeline.

These mirror the quantities reported in the paper: mean squared error
(Fig. 5b/6b prediction accuracy), explained variance (the random-forest
"% Var explained" figure printed by R's ``randomForest``), R-squared
(MARS model quality, Fig. 6c) and the median absolute (percentage)
error used by the Zhang et al. baseline the paper compares against.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mse",
    "rmse",
    "mae",
    "r2_score",
    "explained_variance",
    "median_absolute_error",
    "median_absolute_percentage_error",
    "residual_deviance",
    "spearman_rank_correlation",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(y_true, y_pred)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    Returns 1.0 for a perfect fit; can be negative for models worse than
    predicting the mean. For a constant ``y_true`` the score is 1.0 when
    predictions are exact and 0.0 otherwise (degenerate case).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def explained_variance(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of response variance explained by the predictions.

    Matches R's ``randomForest`` "% Var explained" convention when the
    predictions are OOB predictions: ``1 - mse / var(y)`` with the
    population variance. Expressed as a fraction in [~-inf, 1].
    """
    y_true, y_pred = _validate(y_true, y_pred)
    var = float(np.var(y_true))
    if var == 0.0:
        return 1.0 if np.allclose(y_true, y_pred) else 0.0
    return 1.0 - mse(y_true, y_pred) / var


def median_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Median of absolute errors (robust accuracy summary)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.median(np.abs(y_true - y_pred)))


def median_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Median absolute percentage error, as used by Zhang et al. [21].

    Entries with a zero true value are excluded; raises if all are zero.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    nonzero = y_true != 0.0
    if not np.any(nonzero):
        raise ValueError("all true values are zero; percentage error undefined")
    rel = np.abs((y_pred[nonzero] - y_true[nonzero]) / y_true[nonzero])
    return float(np.median(rel) * 100.0)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties assigned their average rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's rho: Pearson correlation of the two samples' ranks.

    Ties receive average ranks (the standard convention). Used by the
    report layer to quantify how stable a variable-importance ranking
    is across repeated forest refits: rho near 1 means the repeats agree
    on the ordering, rho near 0 means the ranking is noise. Returns 0.0
    for degenerate (constant) inputs, where rank order is undefined.
    """
    a, b = _validate(a, b)
    ra, rb = _average_ranks(a), _average_ranks(b)
    sa, sb = float(np.std(ra)), float(np.std(rb))
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.mean((ra - ra.mean()) * (rb - rb.mean())) / (sa * sb))


def residual_deviance(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Gaussian residual deviance (residual sum of squares).

    For a Gaussian GLM with identity link the deviance reduces to the
    RSS, which is the quantity the paper quotes for the Fig. 5c counter
    models ("low residual deviance, between 0 and 2.7").
    """
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.sum((y_true - y_pred) ** 2))
