"""Plain-text rendering of the paper's figure types.

Keeps every visual artifact inspectable in a terminal/CI log: variable
importance bars (Figs. 2a/3a/4a/5a/6a/8a/8b), partial dependence curves
(Figs. 2b/3b/4b), PCA loading tables (Figs. 2c/3c), predicted-vs-
measured tables (Figs. 5b/6b/7/8c) and counter-model quality tables
(Figs. 5c/6c).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bar_chart",
    "line_plot",
    "table",
    "importance_chart",
    "dependence_plot",
    "loadings_table",
    "prediction_table",
]

_BAR = "#"


def bar_chart(
    labels: list[str],
    values: np.ndarray,
    width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal ASCII bar chart, one row per label."""
    values = np.asarray(values, dtype=float)
    if len(labels) != values.size:
        raise ValueError("labels/values length mismatch")
    lines = [title] if title else []
    if values.size == 0:
        return "\n".join(lines + ["(empty)"])
    label_w = max(len(l) for l in labels)
    vmax = float(np.max(np.abs(values))) or 1.0
    for label, v in zip(labels, values):
        n = int(round(abs(v) / vmax * width))
        lines.append(f"{label:<{label_w}} | {_BAR * n} {v:.3g}")
    return "\n".join(lines)


def line_plot(
    x: np.ndarray,
    y: np.ndarray,
    height: int = 12,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Scatter/line rendering on a character grid."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size == 0:
        raise ValueError("x and y must be non-empty and equally long")
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    for xi, yi in zip(x, y):
        col = int((xi - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yi - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [title] if title else []
    lines.append(f"{y_hi:.3g}".rjust(10))
    lines.extend("          |" + "".join(row) for row in grid)
    lines.append(f"{y_lo:.3g}".rjust(10) + " +" + "-" * width)
    lines.append(" " * 12 + f"{x_lo:.3g}".ljust(width // 2) + f"{x_hi:.3g}".rjust(width // 2))
    return "\n".join(lines)


def table(headers: list[str], rows: list[tuple], title: str | None = None) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title] if title else []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def importance_chart(ranking, k: int = 12, title: str | None = None) -> str:
    """Variable-importance figure (paper Figs. 2a etc.)."""
    rows = ranking.as_rows()[:k]
    return bar_chart(
        [r[0] for r in rows],
        np.array([r[1] for r in rows]),
        title=title or "Variable importance (%IncMSE)",
    )


def dependence_plot(pd, title: str | None = None) -> str:
    """Partial dependence figure (paper Figs. 2b etc.).

    When the dependence carries a confidence band (the Section 7
    extension), the band edges are overlaid as '.' rows around the '*'
    mean curve.
    """
    base_title = title or (
        f"Partial dependence of time on {pd.feature} ({pd.direction()})"
    )
    if not getattr(pd, "has_band", False):
        return line_plot(pd.grid, pd.values, title=base_title)

    height, width = 12, 60
    y_lo = float(min(pd.lower.min(), pd.values.min()))
    y_hi = float(max(pd.upper.max(), pd.values.max()))
    x_lo, x_hi = float(pd.grid.min()), float(pd.grid.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid_chars = [[" "] * width for _ in range(height)]

    def put(x, y, ch, keep="*"):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        if grid_chars[row][col] != keep:
            grid_chars[row][col] = ch

    for x, lo, hi in zip(pd.grid, pd.lower, pd.upper):
        put(x, lo, ".")
        put(x, hi, ".")
    for x, y in zip(pd.grid, pd.values):
        put(x, y, "*", keep="")

    lines = [base_title + "  ('.' = confidence band)"]
    lines.append(f"{y_hi:.3g}".rjust(10))
    lines.extend("          |" + "".join(row) for row in grid_chars)
    lines.append(f"{y_lo:.3g}".rjust(10) + " +" + "-" * width)
    lines.append(" " * 12 + f"{x_lo:.3g}".ljust(width // 2)
                 + f"{x_hi:.3g}".rjust(width // 2))
    return "\n".join(lines)


def loadings_table(loadings, threshold: float = 0.3, title: str | None = None) -> str:
    """Rotated factor loadings (paper Figs. 2c/3c); small loadings blanked."""
    headers = ["variable"] + loadings.components
    rows = []
    for i, name in enumerate(loadings.names):
        row = [name]
        for j in range(len(loadings.components)):
            v = loadings.values[i, j]
            row.append(f"{v:+.2f}" if abs(v) >= threshold else "")
        rows.append(tuple(row))
    return table(headers, rows, title=title or "PCA factor loadings (varimax)")


def prediction_table(report, title: str | None = None) -> str:
    """Predicted vs measured execution times (paper Figs. 5b/6b/7/8c)."""
    rows = [
        (p, f"{pred * 1e3:.4g} ms", f"{meas * 1e3:.4g} ms",
         f"{100 * (pred - meas) / meas:+.1f}%")
        for p, pred, meas in report.rows()
    ]
    body = table(["problem", "predicted", "measured", "error"], rows, title=title)
    return (
        body
        + f"\nMSE={report.mse:.4g}  explained variance="
        + f"{100 * report.explained_variance:.1f}%"
    )
