"""Plain-text visualization of the toolchain's figures."""

from .text import (
    bar_chart,
    dependence_plot,
    importance_chart,
    line_plot,
    loadings_table,
    prediction_table,
    table,
)

__all__ = [
    "bar_chart",
    "dependence_plot",
    "importance_chart",
    "line_plot",
    "loadings_table",
    "prediction_table",
    "table",
]
