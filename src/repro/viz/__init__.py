"""Plain-text and inline-SVG visualization of the toolchain's figures."""

from .svg import svg_bar_chart
from .text import (
    bar_chart,
    dependence_plot,
    importance_chart,
    line_plot,
    loadings_table,
    prediction_table,
    table,
)

__all__ = [
    "bar_chart",
    "dependence_plot",
    "importance_chart",
    "line_plot",
    "loadings_table",
    "prediction_table",
    "svg_bar_chart",
    "table",
]
