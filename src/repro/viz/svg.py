"""Inline SVG rendering for the single-file HTML report.

The HTML report (:mod:`repro.obs.report`) must be a self-contained
artifact — openable from a CI artifact listing with no network, no
JavaScript, no external CSS. These helpers emit small standalone
``<svg>`` fragments that embed directly into the document.

Determinism matters more than beauty here: the report is pinned
bit-for-bit across tracing modes and worker counts, so every coordinate
is formatted with a fixed precision and every iteration order is the
caller's explicit list order.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

__all__ = ["svg_bar_chart"]

_BAR_FILL = "#4878a8"
_BAR_FILL_ALT = "#9ab6d2"
_TEXT_STYLE = "font-family:monospace;font-size:11px"


def _num(v: float) -> str:
    """Fixed-precision coordinate so output never depends on float repr."""
    return f"{v:.2f}".rstrip("0").rstrip(".")


def svg_bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 520,
    bar_height: int = 16,
    label_width: int = 220,
    title: str | None = None,
) -> str:
    """Horizontal bar chart as a standalone ``<svg>`` fragment.

    One row per label, bars scaled to the maximum absolute value,
    numeric value printed after each bar. Rows alternate two fills so
    long charts stay scannable without gridlines.
    """
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    row_h = bar_height + 6
    top = 20 if title else 4
    height = top + row_h * len(labels) + 4
    vmax = max((abs(float(v)) for v in values), default=0.0) or 1.0
    bar_span = width - label_width - 80

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img">'
    ]
    if title:
        parts.append(
            f'<text x="0" y="13" style="{_TEXT_STYLE};font-weight:bold">'
            f"{escape(title)}</text>"
        )
    for i, (label, value) in enumerate(zip(labels, values)):
        y = top + i * row_h
        bar_w = abs(float(value)) / vmax * bar_span
        fill = _BAR_FILL if i % 2 == 0 else _BAR_FILL_ALT
        parts.append(
            f'<text x="{label_width - 6}" y="{y + bar_height - 4}" '
            f'text-anchor="end" style="{_TEXT_STYLE}">'
            f"{escape(str(label))}</text>"
        )
        parts.append(
            f'<rect x="{label_width}" y="{y}" width="{_num(bar_w)}" '
            f'height="{bar_height}" fill="{fill}"/>'
        )
        parts.append(
            f'<text x="{_num(label_width + bar_w + 5)}" '
            f'y="{y + bar_height - 4}" style="{_TEXT_STYLE}">'
            f"{float(value):.3g}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)
