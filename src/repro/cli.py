"""Command-line interface: the "easy-to-use tool" face of BlackForest.

The paper's pitch is a tool a performance engineer can point at a
kernel and get readable feedback from; this module is that front end::

    python -m repro list-kernels
    python -m repro list-archs --format json
    python -m repro profile reduce1 1048576 --arch GTX580
    python -m repro analyze reduce1 --arch GTX580 --trace
    python -m repro predict matrixMul --sizes 96,416,1936
    python -m repro transfer matrixMul --train GTX580 --test K20m
    python -m repro trace analyze reduce1 --arch GTX580
    python -m repro lint --format json
    python -m repro bench --quick
    python -m repro bench --quick --check --threshold 30
    python -m repro report reduce1 --arch GTX580 --format html --out r.html
    python -m repro chaos reduce1 --launch-rate 0.2 --worker-rate 0.1 --jobs 4
    python -m repro repo verify ./profiles --quarantine
    python -m repro publish reduce1 --arch GTX580 --registry ./models
    python -m repro serve --registry ./models --max-batch 32
    python -m repro serve --registry ./models --socket 127.0.0.1:7070 \\
        --telemetry telemetry.jsonl --flight-recorder flightrec.json
    python -m repro top --connect 127.0.0.1:7070
    python -m repro top --once --format json

Every data-producing subcommand takes ``--format {text,json}``; the
sweep-driving ones share ``--seed`` and ``--jobs``. ``--trace`` (on
``analyze``/``predict``/``transfer``) and the ``trace`` wrapper
subcommand record a hierarchical span tree of the run (see
docs/api.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro import (
    BlackForest,
    Campaign,
    HardwareScalingPredictor,
    ProblemScalingPredictor,
    Profiler,
    bottleneck_report,
    common_predictors,
    kernel_registry,
    prediction_report_text,
)
from repro.cpusim import I7_SANDY, XEON_E5
from repro.gpusim import GTX480, GTX580, K20M
from repro.viz import table

ARCHS = {a.name: a for a in (GTX480, GTX580, K20M, XEON_E5, I7_SANDY)}


def _arch(name: str):
    try:
        return ARCHS[name]
    except KeyError:
        raise SystemExit(
            f"unknown architecture {name!r}; choose from {sorted(ARCHS)}"
        )


def _kernel(name: str):
    registry = kernel_registry()
    try:
        return registry[name]
    except KeyError:
        raise SystemExit(
            f"unknown kernel {name!r}; run 'list-kernels' to see choices"
        )


def _parse_sizes(text: str) -> list[int]:
    try:
        return [int(tok) for tok in text.split(",") if tok.strip()]
    except ValueError:
        raise SystemExit(f"could not parse sizes {text!r} (expected e.g. 96,416)")


def _span_dicts(records) -> list[dict]:
    return [
        {
            "name": r.name,
            "span_id": r.span_id,
            "parent_id": r.parent_id,
            "duration_s": r.duration_s,
            "pid": r.pid,
            "labels": r.labels,
        }
        for r in records
    ]


def _emit(args, payload: dict, text: str) -> None:
    """Print a command's result in the selected format.

    When ``--trace`` was active, the recorded span tree is attached:
    under a ``trace`` key (span list + Chrome-trace events) in JSON
    mode, as a rendered tree after the report in text mode.
    """
    tracer = getattr(args, "_tracer", None)
    registry = getattr(args, "_registry", None)
    if getattr(args, "format", "text") == "json":
        if tracer is not None:
            from repro.obs import to_chrome_trace

            payload["trace"] = {
                "spans": _span_dicts(tracer.records),
                "chrome_trace": to_chrome_trace(tracer.records),
            }
        if registry is not None:
            payload["metrics"] = registry.snapshot()
        print(json.dumps(payload, indent=2))
    else:
        print(text)
        if tracer is not None:
            from repro.obs import render_text_tree

            print()
            print(render_text_tree(tracer.records))


# ---------------------------------------------------------------------------


def cmd_list_kernels(args) -> int:
    rows = []
    payload = []
    for name, kernel in sorted(kernel_registry().items()):
        doc = (kernel.__class__.__doc__ or "").strip().splitlines()[0]
        sweep = kernel.default_sweep()
        rows.append((name, f"{len(sweep)} sizes "
                     f"[{sweep[0]}..{sweep[-1]}]", doc[:60]))
        payload.append({
            "kernel": name,
            "sweep_sizes": len(sweep),
            "sweep_min": sweep[0] if np.isscalar(sweep[0]) else list(sweep[0]),
            "sweep_max": sweep[-1] if np.isscalar(sweep[-1]) else list(sweep[-1]),
            "description": doc,
        })
    _emit(args, {"kernels": payload},
          table(["kernel", "default sweep", "description"], rows))
    return 0


def cmd_list_archs(args) -> int:
    rows = []
    payload = []
    for a in ARCHS.values():
        metrics = ", ".join(
            f"{k}={v:g}" for k, v in sorted(a.machine_metrics().items())
        )
        rows.append((a.name, a.family, metrics))
        payload.append({
            "arch": a.name,
            "family": a.family,
            "machine_metrics": a.machine_metrics(),
        })
    _emit(args, {"archs": payload},
          table(["arch", "family", "machine metrics"], rows,
                title="Architectures (Table 2-style metrics)"))
    return 0


def cmd_profile(args) -> int:
    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    try:
        record = Profiler(arch, rng=args.seed).profile(kernel, args.problem)[0]
    except ValueError as exc:
        raise SystemExit(f"cannot profile {kernel.name!r}: {exc}")
    rows = sorted(record.counters.items())
    text = table(["counter", "value"], rows,
                 title=f"{kernel.name} (problem={args.problem}) on {arch.name}")
    text += f"\n\nexecution time: {record.time_s * 1e3:.4g} ms"
    if record.power_w is not None:
        text += f"\naverage power : {record.power_w:.1f} W"
    _emit(args, {
        "kernel": kernel.name,
        "arch": arch.name,
        "problem": args.problem,
        "time_s": record.time_s,
        "power_w": record.power_w,
        "counters": dict(sorted(record.counters.items())),
    }, text)
    return 0


def cmd_analyze(args) -> int:
    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    problems = _parse_sizes(args.sizes) if args.sizes else None
    print(f"collecting campaign for {kernel.name} on {arch.name}...",
          file=sys.stderr)
    campaign = Campaign(kernel, arch, rng=args.seed).run(
        problems=problems, replicates=args.replicates, n_jobs=args.jobs,
        telemetry=args.telemetry,
    )
    fit = BlackForest(
        n_trees=args.trees, importance_repeats=args.repeats,
        n_jobs=args.jobs, rng=args.seed + 1,
    ).fit(campaign, response=args.response)
    _emit(args, {
        "kernel": kernel.name,
        "arch": arch.name,
        "response": args.response,
        "n_runs": len(campaign),
        "oob_explained_variance": fit.oob_explained_variance,
        "test_explained_variance": fit.test_explained_variance,
        "top_predictors": fit.importance.names[:args.top],
        "bottlenecks": [
            {"pattern": b.pattern.key, "score": b.score,
             "evidence": list(b.evidence)}
            for b in fit.bottlenecks
        ],
    }, bottleneck_report(fit, top_k=args.top))
    return 0


def cmd_predict(args) -> int:
    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    sizes = _parse_sizes(args.sizes)
    print(f"training problem-scaling model for {kernel.name} on "
          f"{arch.name}...", file=sys.stderr)
    campaign = Campaign(kernel, arch, rng=args.seed).run(
        replicates=args.replicates, n_jobs=args.jobs
    )
    predictor = ProblemScalingPredictor(
        BlackForest(n_trees=args.trees, n_jobs=args.jobs, rng=args.seed + 1),
        prefer_mars=args.mars, rng=args.seed + 2,
    ).fit(campaign)
    times = predictor.predict(np.array(sizes, dtype=float))
    rows = [(s, f"{t * 1e3:.4g} ms") for s, t in zip(sizes, times)]
    _emit(args, {
        "kernel": kernel.name,
        "arch": arch.name,
        "predictions": [
            {"size": s, "predicted_time_s": float(t)}
            for s, t in zip(sizes, times)
        ],
    }, table(["size", "predicted time"], rows,
             title=f"{kernel.name} on {arch.name}"))
    return 0


def cmd_transfer(args) -> int:
    train_arch = _arch(args.train)
    test_arch = _arch(args.test)
    kernel = _kernel(args.kernel)
    print(f"profiling {kernel.name} on {train_arch.name} and "
          f"{test_arch.name}...", file=sys.stderr)
    train = Campaign(kernel, train_arch, rng=args.seed).run(
        replicates=args.replicates, n_jobs=args.jobs
    )
    test = Campaign(kernel, test_arch, rng=args.seed + 1).run(
        replicates=args.replicates, n_jobs=args.jobs
    )
    common = common_predictors(train, test)
    hw = HardwareScalingPredictor(n_trees=args.trees, rng=args.seed + 2)
    hw.fit(train, common=common)
    result = hw.assess(test)
    _emit(args, {
        "kernel": kernel.name,
        "train_arch": train_arch.name,
        "test_arch": test_arch.name,
        "variables": result.variables,
        "explained_variance": result.report.explained_variance,
        "mean_relative_error": result.report.mean_relative_error,
        "rows": [
            {"problem": p, "predicted_s": pr, "measured_s": me}
            for p, pr, me in result.report.rows()
        ],
    }, prediction_report_text(
        result.report,
        title=f"{kernel.name}: {train_arch.name} -> {test_arch.name}",
    ))
    return 0


def cmd_bench(args) -> int:
    import os
    import tempfile

    from repro.bench import (
        BASELINE_PATH,
        check_regressions,
        format_results,
        run_benchmarks,
        write_report,
    )

    ops = (
        [tok.strip() for tok in args.ops.split(",") if tok.strip()]
        if args.ops else None
    )
    try:
        results = run_benchmarks(
            ops=ops, quick=args.quick,
            log=lambda msg: print(msg, file=sys.stderr),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))

    # With --check and no explicit --out, don't clobber the committed
    # baseline with the fresh (possibly regressed) run.
    out = args.out
    if out is None and not args.check:
        out = BASELINE_PATH
    if out is not None:
        payload = write_report(results, out, quick=args.quick)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            payload = write_report(
                results, os.path.join(tmp, "bench.json"), quick=args.quick
            )

    if not args.no_history:
        from repro.obs.history import append_history

        append_history(args.history, payload)

    regressions = None
    if args.check:
        try:
            regressions = check_regressions(
                payload, baseline_path=args.baseline,
                threshold_pct=args.threshold,
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bench --check: {exc}")

    if getattr(args, "format", "text") == "json":
        doc = {"results": [r.__dict__ for r in results]}
        if regressions is not None:
            doc["regressions"] = [
                {
                    "op": r.op,
                    "baseline_speedup": r.baseline_speedup,
                    "current_speedup": r.current_speedup,
                    "drop_pct": r.drop_pct,
                }
                for r in regressions
            ]
        print(json.dumps(doc, indent=2))
    else:
        print(format_results(results))
        if out is not None:
            print(f"\nreport written to {out}")
        if regressions is not None:
            if regressions:
                print(f"\nREGRESSIONS detected against {args.baseline}:",
                      file=sys.stderr)
                for reg in regressions:
                    print(f"  {reg.describe()}", file=sys.stderr)
            else:
                print(f"\nno regressions against {args.baseline}")
    return 1 if regressions else 0


def cmd_report(args) -> int:
    """Build the structured bottleneck report (text/Markdown/HTML)."""
    from repro.obs import read_events
    from repro.obs.log import event_log
    from repro.obs.report import build_report

    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)

    events = None
    if args.repo:
        from repro.profiling import CampaignKey, ProfileRepository

        key = CampaignKey(kernel.name, arch.name, args.tag)
        try:
            campaign = ProfileRepository(args.repo).load(key)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(f"cannot load {key} from {args.repo}: {exc}")
        print(f"loaded {len(campaign)} runs for {key} from {args.repo}",
              file=sys.stderr)
        fit = _report_fit(args, campaign)
    else:
        problems = _parse_sizes(args.sizes) if args.sizes else None
        print(f"collecting campaign for {kernel.name} on {arch.name}...",
              file=sys.stderr)
        with event_log() as log:
            campaign = Campaign(kernel, arch, rng=args.seed).run(
                problems=problems, replicates=args.replicates,
                n_jobs=args.jobs,
            )
            fit = _report_fit(args, campaign)
        events = log

    if args.events:
        events = read_events(args.events)

    tracer = getattr(args, "_tracer", None)
    report = build_report(
        fit, campaign,
        trace=tracer.records if tracer is not None else None,
        events=events,
        top_k=args.top,
    )
    rendered = report.render(args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _report_fit(args, campaign):
    return BlackForest(
        n_trees=args.trees, importance_repeats=args.repeats,
        n_jobs=args.jobs, rng=args.seed + 1,
    ).fit(campaign, response=args.response)


def cmd_lint(args) -> int:
    from repro.analysis import (
        Severity,
        as_json,
        exit_code,
        lint_artifacts,
        lint_tree,
        rule_table,
        summarize,
    )

    if args.list_rules:
        print(table(
            ["rule", "severity", "domain", "summary"], rule_table(),
            title="Lint rule catalogue (see docs/analysis.md)",
        ))
        return 0
    select = (
        [tok.strip() for tok in args.select.split(",") if tok.strip()]
        if args.select else None
    )
    if args.plan and args.artifacts:
        print("--plan and --artifacts are separate modes; pass one",
              file=sys.stderr)
        return 2
    if args.plan:
        from repro.analysis import lint_plan, plan_from_file

        plan = plan_from_file(args.plan)
        if args.budget is not None:
            plan.budget_s = args.budget
        findings = lint_plan(plan, select=select)
        n_rules = len(_plan_rules())
    elif args.artifacts:
        from repro.analysis import rules_for

        findings = lint_artifacts(_expand_artifact_paths(args.artifacts))
        if select is not None:
            findings = [
                f for f in findings
                if any(f.rule.startswith(s) for s in select)
            ]
        n_rules = len(rules_for("artifact"))
    else:
        findings = lint_tree(
            select=select,
            include_launches=not args.no_launches,
            include_source=not args.no_source,
        )
        n_rules = None
    if args.format == "json":
        print(as_json(findings, n_rules=n_rules))
    else:
        print(summarize(findings, n_rules=n_rules))
    return exit_code(findings, Severity.parse(args.fail_on))


def _plan_rules():
    from repro.analysis import rules_for

    return rules_for("plan")


def _expand_artifact_paths(paths):
    """Files as given; directories expanded to the artifact files the
    schema registry knows how to name (JSON/JSONL)."""
    out = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(
                p for p in path.rglob("*")
                if p.suffix in (".json", ".jsonl") and p.is_file()
            ))
        else:
            out.append(path)
    return out


def _plan_from_file(path: str, default_seed: int):
    """Parse a JSON fault-plan file into a :class:`FaultPlan`."""
    from repro.faults import FaultPlan, FaultSpec

    with open(path) as fh:
        data = json.load(fh)
    raw = data["specs"] if isinstance(data, dict) else data
    seed = data.get("seed", default_seed) if isinstance(data, dict) \
        else default_seed
    try:
        specs = [
            FaultSpec(
                s["site"], s["mode"], match=s.get("match"),
                probability=s.get("probability", 1.0),
                payload=s.get("payload"),
            )
            for s in raw
        ]
    except (KeyError, ValueError, TypeError) as exc:
        raise SystemExit(f"bad fault plan {path!r}: {exc}")
    return FaultPlan(specs, seed=seed)


def cmd_chaos(args) -> int:
    """Run a campaign under an injected fault plan; report survivals.

    The point is operational confidence: with faults firing, the sweep
    must *complete* — failing launches quarantined, crashed workers
    recovered — instead of crashing. Exit code 0 means the campaign
    produced records; 1 means nothing survived. With ``--serve`` the
    faults target the prediction server instead (see
    :func:`_cmd_chaos_serve`).
    """
    from repro.faults import FaultPlan, FaultSpec, RetryPolicy, fault_injection

    if args.serve:
        return _cmd_chaos_serve(args)

    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    problems = _parse_sizes(args.sizes) if args.sizes else None

    if args.plan:
        plan = _plan_from_file(args.plan, args.seed)
    else:
        transient = {"times": 1} if args.transient else None
        specs = []
        if args.launch_rate > 0:
            specs.append(FaultSpec("profiler.launch", "raise",
                                   probability=args.launch_rate,
                                   payload=transient))
        if args.nan_rate > 0:
            specs.append(FaultSpec("profiler.launch", "nan_counters",
                                   probability=args.nan_rate,
                                   payload=transient))
        if args.worker_rate > 0:
            specs.append(FaultSpec("parallel.worker", "crash",
                                   probability=args.worker_rate))
        if args.torn_rate > 0:
            specs.append(FaultSpec("repository.write", "torn_file",
                                   probability=args.torn_rate))
        if not specs:
            raise SystemExit(
                "no faults configured; pass --plan FILE or at least one of "
                "--launch-rate/--nan-rate/--worker-rate/--torn-rate"
            )
        plan = FaultPlan(specs, seed=args.seed)

    retry = RetryPolicy(max_attempts=args.retries, timeout_s=args.timeout)
    print(f"chaos campaign for {kernel.name} on {arch.name} "
          f"({len(plan.specs)} fault rules)...", file=sys.stderr)
    with fault_injection(plan):
        result = Campaign(kernel, arch, rng=args.seed).run(
            problems=problems, replicates=args.replicates,
            n_jobs=args.jobs, retry=retry, telemetry=args.telemetry,
        )
        repo_findings = None
        if args.save_to:
            from repro.profiling import ProfileRepository, CampaignKey

            repo = ProfileRepository(args.save_to)
            if result.records:
                repo.save(result, seed=args.seed)
                key = CampaignKey(result.kernel, result.arch)
                repo_findings = repo.verify(key)

    quarantined = [q.to_dict() for q in result.quarantined]
    rows = [(q["problem"], q["stage"], q["attempts"], q["error"][:60])
            for q in quarantined]
    text = table(
        ["problem", "stage", "attempts", "error"], rows,
        title=f"chaos: {kernel.name} on {arch.name} — "
        f"{len(result.records)} records kept, "
        f"{len(result.quarantined)} runs quarantined",
    ) if rows else (
        f"chaos: {kernel.name} on {arch.name} — all "
        f"{len(result.records)} records survived (faults fired: "
        f"{plan.summary() or 'none'})"
    )
    if repo_findings is not None:
        text += ("\nrepository verify: "
                 + ("; ".join(repo_findings) if repo_findings else "intact"))
    _emit(args, {
        "kernel": kernel.name,
        "arch": arch.name,
        "n_records": len(result.records),
        "n_quarantined": len(result.quarantined),
        "quarantined": quarantined,
        "faults_fired": plan.summary(),
        "repository_findings": repo_findings,
    }, text)
    return 0 if result.records else 1


def _cmd_chaos_serve(args) -> int:
    """Chaos-test the prediction server: concurrent retrying clients vs
    injected ``serve.request`` / ``registry.load`` faults.

    The contract under fire: the server never crashes, faulted requests
    get *typed* errors, the circuit breaker opens and recovers on the
    deterministic schedule, shutdown drains in-flight work — and every
    *successful* response is byte-identical to what the serial stdio
    server answers without faults. Exit 0 when all of that holds.
    """
    import tempfile
    import threading

    from numpy.random import default_rng

    from repro.faults import FaultPlan, FaultSpec, fault_injection
    from repro.faults.retry import RetryPolicy
    from repro.serve import (
        FitRegistry,
        PredictionClient,
        PredictionServer,
        ServeError,
        servable_from_fit,
        serve_tcp,
    )

    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    problems = _parse_sizes(args.sizes) if args.sizes else None

    if args.plan:
        plan = _plan_from_file(args.plan, args.seed)
    else:
        specs = []
        if args.request_rate > 0:
            specs.append(FaultSpec(
                "serve.request", "raise", match={"method": "predict"},
                probability=args.request_rate,
            ))
        if args.delay_rate > 0:
            specs.append(FaultSpec(
                "serve.request", "delay", match={"method": "predict"},
                probability=args.delay_rate,
                payload={"seconds": args.delay_s},
            ))
        if args.corrupt_times > 0:
            # A bounded burst of corrupt loads: opens the breaker after
            # `threshold` consecutive failures, then the half-open probe
            # after the burst succeeds and closes it — open AND recover,
            # both on a deterministic schedule.
            specs.append(FaultSpec(
                "registry.load", "corrupt",
                payload={"times": args.corrupt_times},
            ))
        if not specs:
            raise SystemExit(
                "no serve faults configured; pass --plan FILE or at "
                "least one of --request-rate/--delay-rate/--corrupt-times"
            )
        plan = FaultPlan(specs, seed=args.seed)

    # Model building is out of scope: train and publish before any
    # fault plan is installed.
    print(f"chaos --serve: fitting {kernel.name} on {arch.name}...",
          file=sys.stderr)
    campaign = Campaign(kernel, arch, rng=args.seed).run(
        problems=problems, replicates=args.replicates, n_jobs=args.jobs,
    )
    fit = BlackForest(
        n_trees=args.trees, n_jobs=args.jobs, rng=args.seed + 1,
    ).fit(campaign, response="time")
    servable = servable_from_fit(fit, source={"n_runs": len(campaign)})

    # Deterministic request load: ids match what each PredictionClient
    # will generate, so expected serial responses can be compared
    # byte-for-byte against live concurrent ones.
    rng = default_rng(args.seed)
    n_features = len(servable.feature_names)
    per_client: list[list[tuple[str, dict]]] = [
        [] for _ in range(args.clients)
    ]
    for i in range(args.requests):
        c = i % args.clients
        params = {
            "kernel": kernel.name,
            "arch": arch.name,
            "X": rng.uniform(1.0, 1000.0, size=(1, n_features)).tolist(),
        }
        if args.deadline_ms is not None:
            params["deadline_ms"] = args.deadline_ms
        rid = f"c{c}-{len(per_client[c]) + 1}"
        per_client[c].append((rid, params))

    with tempfile.TemporaryDirectory() as tmp:
        registry = FitRegistry(tmp)
        registry.publish(servable)

        # Ground truth: the serial stdio server, no faults installed.
        serial = PredictionServer(registry)
        expected: dict[str, str] = {}
        for reqs in per_client:
            for rid, params in reqs:
                line = json.dumps(
                    {"id": rid, "method": "predict", "params": params},
                    sort_keys=True,
                )
                expected[rid] = serial.handle_batch([line])[0]

        # The flight recorder rides along under fire: the ring must
        # capture every injected failure, and a breaker opening must
        # dump exactly once (shutdown is via RPC, not SIGTERM, so the
        # breaker-open artifact is the only dump expected).
        flightrec_path = Path(tmp) / "flightrec.json"
        server = PredictionServer(
            registry,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            flightrec_path=str(flightrec_path),
        )
        ready = threading.Event()
        bound: dict = {}

        def on_ready(host, port):
            bound["addr"] = (host, port)
            ready.set()

        retry = RetryPolicy(
            max_attempts=args.retries, backoff_s=0.01,
            max_backoff_s=0.2, jitter=0.5, seed=args.seed,
        )
        outcomes: dict[str, tuple[str, str]] = {}
        outcome_lock = threading.Lock()

        def client_run(c: int) -> None:
            client = PredictionClient(
                *bound["addr"], retry=retry, id_prefix=f"c{c}-",
            )
            try:
                for rid, params in per_client[c]:
                    try:
                        client.call("predict", params)
                        with outcome_lock:
                            outcomes[rid] = ("ok", client.last_line)
                    except ServeError as exc:
                        with outcome_lock:
                            outcomes[rid] = ("typed_error", exc.kind)
                    except OSError as exc:
                        with outcome_lock:
                            outcomes[rid] = ("lost", str(exc))
            finally:
                client.close()

        print(f"chaos --serve: {args.clients} clients x "
              f"{args.requests} requests, {len(plan.specs)} fault "
              f"rule(s)...", file=sys.stderr)
        with fault_injection(plan):
            serve_thread = threading.Thread(
                target=serve_tcp,
                args=(server, "127.0.0.1", 0),
                kwargs={"workers": args.workers, "on_ready": on_ready,
                        "announce": False},
                daemon=True,
            )
            serve_thread.start()
            if not ready.wait(timeout=15):
                raise SystemExit("chaos --serve: server never became ready")
            client_threads = [
                threading.Thread(target=client_run, args=(c,))
                for c in range(args.clients)
            ]
            for t in client_threads:
                t.start()
            for t in client_threads:
                t.join()
            shutdown_error = None
            closer = PredictionClient(*bound["addr"], id_prefix="ctl-")
            try:
                closer.shutdown()
            except (ServeError, OSError) as exc:
                shutdown_error = str(exc)
            finally:
                closer.close()
            serve_thread.join(timeout=30)
        drained_cleanly = not serve_thread.is_alive()

        # Flight-recorder leg (read before the tempdir vanishes).
        from repro.obs import read_flightrec

        fired = plan.summary()
        ring = server.flightrec.events()
        injected_captured = sum(
            1 for e in ring
            if e["kind"] == "error"
            and "injected fault" in (e["fields"].get("message") or "")
        )
        breaker_opens = server.metrics.counters.get(
            ("serve.breaker.open",), 0
        )
        flight_problems: list[str] = []
        if fired.get("serve.request:raise", 0) and not injected_captured:
            flight_problems.append(
                "ring captured no injected-failure error records"
            )
        dump_doc = None
        if breaker_opens:
            if not flightrec_path.exists():
                flight_problems.append(
                    "breaker opened but no flight-recorder dump"
                )
            else:
                dump_doc = read_flightrec(flightrec_path)
                if dump_doc["reason"] != "breaker_open":
                    flight_problems.append(
                        f"dump reason {dump_doc['reason']!r} "
                        "!= 'breaker_open'"
                    )
                if dump_doc["dump_count"] != 1:
                    flight_problems.append(
                        f"dump_count {dump_doc['dump_count']} != 1 "
                        "(breaker-open dump must fire exactly once)"
                    )
        elif flightrec_path.exists():
            # No SIGTERM, no worker crash, breaker never opened: any
            # artifact here means a spurious dump trigger.
            dump_doc = read_flightrec(flightrec_path)
            flight_problems.append(
                f"unexpected dump (reason {dump_doc['reason']!r})"
            )
        flight = {
            "ring_events": len(ring),
            "injected_captured": injected_captured,
            "breaker_opens": int(breaker_opens),
            "dump_reason": dump_doc["reason"] if dump_doc else None,
            "dump_count": dump_doc["dump_count"] if dump_doc else 0,
            "dump_events": len(dump_doc["events"]) if dump_doc else 0,
            "problems": flight_problems,
        }

    n_ok = sum(1 for kind, _ in outcomes.values() if kind == "ok")
    typed: dict[str, int] = {}
    for kind, detail in outcomes.values():
        if kind == "typed_error":
            typed[detail] = typed.get(detail, 0) + 1
    lost = {
        rid: detail for rid, (kind, detail) in outcomes.items()
        if kind == "lost"
    }
    mismatched = sorted(
        rid for rid, (kind, line) in outcomes.items()
        if kind == "ok" and line != expected[rid]
    )
    unanswered = sorted(expected.keys() - outcomes.keys())
    snapshot = server.metrics.snapshot()
    counters = snapshot["counter"]
    breaker_events = {
        name: count for name, count in counters.items()
        if name.startswith("serve.breaker.")
    }

    survived = (
        drained_cleanly
        and not lost
        and not mismatched
        and not unanswered
        and shutdown_error is None
        and not flight_problems
    )
    text = (
        f"chaos --serve: {kernel.name} on {arch.name} — "
        f"{n_ok}/{args.requests} ok"
        + (f", typed errors {typed}" if typed else "")
        + (f", LOST {len(lost)}" if lost else "")
        + (f", MISMATCHED {mismatched}" if mismatched else "")
        + (f", UNANSWERED {unanswered}" if unanswered else "")
        + f"; faults fired: {plan.summary() or 'none'}"
        + (f"; breaker: {breaker_events}" if breaker_events else "")
        + f"; drained {server.drained_count()} in-flight, "
        + ("clean shutdown" if drained_cleanly else "SHUTDOWN HUNG")
        + (f" (shutdown error: {shutdown_error})" if shutdown_error else "")
        + (
            f"; flight recorder: {flight['ring_events']} ring events, "
            f"{flight['injected_captured']} injected captured"
            + (
                f", dumped ({flight['dump_reason']})"
                if flight["dump_reason"] else ""
            )
            + (
                f", PROBLEMS {flight_problems}" if flight_problems
                else ", OK"
            )
        )
    )
    _emit(args, {
        "kernel": kernel.name,
        "arch": arch.name,
        "clients": args.clients,
        "requests": args.requests,
        "n_ok": n_ok,
        "typed_errors": typed,
        "lost": lost,
        "mismatched": mismatched,
        "unanswered": unanswered,
        "bit_identical": not mismatched,
        "faults_fired": plan.summary(),
        "breaker_events": breaker_events,
        "drained": server.drained_count(),
        "clean_shutdown": drained_cleanly,
        "shutdown_error": shutdown_error,
        "flight_recorder": flight,
        # Per-method timer snapshot (count, p50/p95/p99) — the latency
        # evidence CI archives for the concurrent chaos leg.
        "latency": snapshot["timer"],
        "counters": counters,
    }, text)
    return 0 if survived else 1


def cmd_repo(args) -> int:
    """Inspect / verify an on-disk profile repository."""
    from repro.profiling import ProfileRepository

    repo = ProfileRepository(args.root)
    if args.action == "list":
        metas = repo.list_campaigns()
        rows = [(m.get("kernel", "?"), m.get("arch", "?"),
                 m.get("tag") or "-", m.get("n_runs", "?")) for m in metas]
        _emit(args, {"campaigns": metas},
              table(["kernel", "arch", "tag", "runs"], rows,
                    title=f"repository {args.root}"))
        return 0

    if args.action == "migrate":
        summary = repo.migrate()
        damaged = {
            name: probs
            for name, probs in summary.get("findings", {}).items()
            if any("legacy" not in p for p in probs)
        }
        _emit(args, {"root": str(repo.root), **summary},
              f"migrated {args.root} to layout v{summary['layout']}: "
              f"{summary['migrated']} campaign(s) moved, "
              f"{summary['indexed']} index(es) built, "
              f"{len(summary['skipped'])} skipped, "
              f"{len(damaged)} damaged")
        return 1 if damaged else 0

    if args.action == "stats":
        s = repo.stats()
        lines = [
            f"repository {args.root} (layout v{s['layout']})",
            f"  campaigns: {s['campaigns']}   runs: {s['runs']}",
            f"  shards: {s['shards']['used']}/{s['shards']['total']} used, "
            f"max fill {s['shards']['max_fill']}",
            f"  index: {s['index']['fresh']} fresh, "
            f"{s['index']['stale']} stale, {s['index']['missing']} missing",
        ]
        _emit(args, {"root": str(repo.root), **s}, "\n".join(lines))
        return 0

    # action == "verify"
    findings = repo.verify_all(full=args.full)
    damaged = {
        name: probs for name, probs in findings.items()
        if any("legacy" not in p for p in probs)
    }
    moved = {}
    if args.quarantine:
        for name in damaged:
            moved[name] = str(repo._quarantine_dirname(name))
    rows = []
    for name in sorted(findings):
        probs = findings[name]
        status = ("quarantined" if name in moved
                  else "DAMAGED" if name in damaged
                  else "ok" if not probs else "legacy")
        rows.append((name, status, "; ".join(probs)[:70] or "-"))
    _emit(args, {
        "root": str(repo.root),
        "findings": findings,
        "damaged": sorted(damaged),
        "quarantined": moved,
    }, table(["campaign", "status", "findings"], rows,
             title=f"verify {args.root}: {len(damaged)} damaged of "
             f"{len(findings)} campaigns"))
    return 1 if damaged and not args.quarantine else 0


def cmd_publish(args) -> int:
    """Fit a model and publish it into a fit registry for serving."""
    from repro.serve import FitRegistry, servable_from_fit

    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    source = {"trees": args.trees, "seed": args.seed}
    if args.repo:
        from repro.profiling import CampaignKey, ProfileRepository

        repo = ProfileRepository(args.repo)
        key = CampaignKey(kernel.name, arch.name, args.tag)
        try:
            campaign = repo.load(key)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(f"cannot load {key} from {args.repo}: {exc}")
        digest = repo.manifest_digest(key)
        if digest is not None:
            source["campaign_manifest_sha256"] = digest
        print(f"loaded {len(campaign)} runs for {key} from {args.repo}",
              file=sys.stderr)
    else:
        problems = _parse_sizes(args.sizes) if args.sizes else None
        print(f"collecting campaign for {kernel.name} on {arch.name}...",
              file=sys.stderr)
        campaign = Campaign(kernel, arch, rng=args.seed).run(
            problems=problems, replicates=args.replicates, n_jobs=args.jobs
        )
    source["n_runs"] = len(campaign)
    fit = BlackForest(
        n_trees=args.trees, n_jobs=args.jobs, rng=args.seed + 1,
    ).fit(campaign, response=args.response)
    servable = servable_from_fit(fit, tag=args.tag, source=source)
    version = FitRegistry(args.registry).publish(servable)
    _emit(args, {
        "kernel": kernel.name,
        "arch": arch.name,
        "tag": args.tag,
        "registry": str(args.registry),
        "version": version.version,
        "digest": version.digest,
        "n_runs": len(campaign),
    }, f"published {version} to {args.registry} "
       f"(digest {version.digest[:12]}, {len(campaign)} training runs)")
    return 0


def cmd_serve(args) -> int:
    """Serve predictions from a fit registry over line-delimited JSON-RPC."""
    from repro.serve import (
        FitRegistry,
        PredictionServer,
        serve_stdio,
        serve_tcp,
    )

    server = PredictionServer(
        FitRegistry(args.registry),
        max_batch=args.max_batch,
        cache_size=args.cache_size,
        request_timeout_s=args.request_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        watch_reload=not args.no_reload,
        telemetry_path=args.telemetry,
        telemetry_interval_s=args.telemetry_interval,
        flightrec_path=args.flight_recorder,
    )
    if args.socket:
        host, _, port = args.socket.rpartition(":")
        try:
            port_no = int(port)
        except ValueError:
            raise SystemExit(
                f"bad --socket {args.socket!r} (expected HOST:PORT)"
            )
        # serve_tcp prints the machine-readable ready line
        # ("repro-serve-ready host=... port=...") after bind().
        served = serve_tcp(
            server,
            host or "127.0.0.1",
            port_no,
            workers=args.workers,
            queue_size=args.queue_size,
            linger_s=args.linger_ms / 1000.0,
        )
    else:
        print(f"repro serve: registry {args.registry}, "
              f"max_batch={args.max_batch}, cache_size={args.cache_size} "
              f"(JSON-RPC on stdio; EOF or 'shutdown' to stop)",
              file=sys.stderr)
        served = serve_stdio(server)
    print(f"repro serve: stopped after {served} requests "
          f"({server.drained_count()} drained)", file=sys.stderr)
    return 0


def cmd_query(args) -> int:
    """Query a running ``repro serve`` instance (retrying client)."""
    from repro.faults.retry import RetryPolicy
    from repro.serve import PredictionClient, ServeError

    host, _, port = args.connect.rpartition(":")
    try:
        port_no = int(port)
    except ValueError:
        raise SystemExit(
            f"bad --connect {args.connect!r} (expected HOST:PORT)"
        )
    retry = RetryPolicy(
        max_attempts=args.retries,
        backoff_s=0.05,
        max_backoff_s=1.0,
        jitter=0.5,
        seed=args.seed,
        max_elapsed_s=args.max_elapsed,
    )
    client = PredictionClient(
        host or "127.0.0.1", port_no, retry=retry, timeout_s=args.timeout
    )
    try:
        if args.method == "predict":
            if not args.kernel:
                raise SystemExit("query predict needs a kernel argument")
            if not args.X:
                raise SystemExit(
                    "query predict needs --X (JSON feature matrix, e.g. "
                    "'[[1024, 2.5, 0.9, 4096]]')"
                )
            try:
                X = json.loads(args.X)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"bad --X: {exc}")
            result = client.predict(
                args.kernel, args.arch, X=X, tag=args.tag,
                version=args.version, deadline_ms=args.deadline_ms,
            )
            preds = ", ".join(f"{v:.6g}" for v in result["predictions"])
            text = (f"{args.kernel} on {args.arch} "
                    f"@{result['version']}: [{preds}] "
                    f"({result['response']}, {client.last_attempts} "
                    f"attempt(s))")
        else:
            result = client.call(
                args.method, retry=args.method != "shutdown"
            )
            text = json.dumps(result, indent=2, sort_keys=True)
    except ServeError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    _emit(args, {"method": args.method, "result": result,
                 "attempts": client.last_attempts}, text)
    return 0


def _render_top(doc: dict, qps: float | None, addr: str) -> str:
    """One plain-text dashboard frame from a telemetry snapshot."""
    server = doc.get("server") or {}
    counters = doc.get("counters") or {}
    lines = [
        f"repro top — {addr}",
        "  qps {qps}   requests {served}   inflight {inflight}   "
        "queue-shed {shed}   timeouts {timeouts}".format(
            qps=f"{qps:.1f}" if qps is not None else "-",
            served=server.get("requests_served", 0),
            inflight=server.get("inflight", 0),
            shed=counters.get("serve.shed", 0),
            timeouts=counters.get("serve.timeouts", 0),
        ),
        "  cache {rate:.1%} hit ({hits} hits / {misses} misses, "
        "{entries} warm, {evictions} evicted)   reloads {reloads}   "
        "{drain}".format(
            rate=server.get("cache_hit_rate", 0.0),
            hits=server.get("cache_hits", 0),
            misses=server.get("cache_misses", 0),
            entries=server.get("cache_entries", 0),
            evictions=server.get("cache_evictions", 0),
            reloads=counters.get("serve.reloads", 0),
            drain=(
                f"DRAINING ({server.get('drained', 0)} drained)"
                if server.get("draining") else "accepting"
            ),
        ),
    ]
    timers = doc.get("timers") or {}
    if timers:
        rows = []
        for key in sorted(timers):
            h = timers[key]
            fmt = lambda v: f"{v * 1e3:.3g}" if v is not None else "-"
            rows.append((
                key, h.get("count", 0), fmt(h.get("p50_s")),
                fmt(h.get("p95_s")), fmt(h.get("p99_s")),
                fmt(h.get("max_s")),
            ))
        lines.append("")
        lines.append(table(
            ["latency", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"],
            rows,
        ))
    breakers = doc.get("breakers") or {}
    if breakers:
        lines.append("")
        lines.append(table(
            ["breaker", "state"],
            [(k, breakers[k]) for k in sorted(breakers)],
        ))
    return "\n".join(lines)


def cmd_top(args) -> int:
    """Live dashboard over a running server's ``telemetry`` RPC.

    Plain-text frames refreshed in place every ``--interval`` seconds;
    ``--once`` prints a single frame and exits (``--once --format
    json`` emits the raw snapshot for scripts). qps is computed from
    ``requests_served`` deltas between consecutive scrapes.
    """
    import time as _time

    from repro.serve import PredictionClient, ServeError

    host, _, port = args.connect.rpartition(":")
    try:
        port_no = int(port)
    except ValueError:
        raise SystemExit(
            f"bad --connect {args.connect!r} (expected HOST:PORT)"
        )
    client = PredictionClient(
        host or "127.0.0.1", port_no, timeout_s=args.timeout,
        id_prefix="top-",
    )
    prev: tuple[float, int] | None = None
    try:
        while True:
            t = _time.monotonic()
            try:
                doc = client.telemetry()["telemetry"]
            except (ServeError, OSError) as exc:
                print(f"cannot scrape {args.connect}: {exc}",
                      file=sys.stderr)
                return 1
            served = (doc.get("server") or {}).get("requests_served", 0)
            qps = None
            if prev is not None and t > prev[0]:
                qps = max(0, served - prev[1]) / (t - prev[0])
            prev = (t, served)
            frame = _render_top(doc, qps, args.connect)
            if args.once:
                _emit(args, {"telemetry": doc, "qps": qps}, frame)
                return 0
            # ANSI clear + home keeps the dashboard in place on a
            # terminal; piped output just gets frame after frame.
            prefix = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
            print(prefix + frame + "\n", flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def cmd_trace(args) -> int:
    """Run any subcommand under tracing and print/export its span tree."""
    from repro.obs import collect, render_text_tree, to_chrome_trace, trace

    wrapped = list(args.wrapped)
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        raise SystemExit("usage: repro trace <subcommand> [options...]")
    if wrapped[0] == "trace":
        raise SystemExit("cannot nest 'repro trace'")
    sub_args = build_parser().parse_args(wrapped)
    with trace() as tracer, collect() as registry:
        rc = _COMMANDS[sub_args.command](sub_args)
    if args.format == "json":
        out = json.dumps({
            "command": wrapped,
            "spans": _span_dicts(tracer.records),
            "chrome_trace": to_chrome_trace(tracer.records),
            "metrics": registry.snapshot(),
        }, indent=2)
    else:
        out = render_text_tree(tracer.records)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(out + "\n")
        print(f"trace written to {args.out}", file=sys.stderr)
    else:
        print(out)
    return rc


# ---------------------------------------------------------------------------


def _add_format(p) -> None:
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlackForest: GPU bottleneck analysis & performance "
        "prediction (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-kernels", help="available kernel models")
    _add_format(p)
    p = sub.add_parser("list-archs", help="available architectures")
    _add_format(p)

    p = sub.add_parser("profile", help="profile one run, print all counters")
    p.add_argument("kernel")
    p.add_argument("problem", type=int)
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--seed", type=int, default=0)
    _add_format(p)

    p = sub.add_parser("analyze", help="full bottleneck analysis")
    p.add_argument("kernel")
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--sizes", help="comma-separated problem sizes "
                   "(default: the kernel's paper sweep)")
    p.add_argument("--replicates", type=int, default=1)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--repeats", type=int, default=3,
                   help="forests averaged for the importance ranking")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--response", choices=("time", "power"), default="time")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the campaign sweep and "
                   "forest fits (-1 = all cores); results are identical "
                   "for any value")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", action="store_true",
                   help="record a span tree of the run (text: appended; "
                   "json: under the 'trace' key)")
    p.add_argument("--telemetry", metavar="PATH",
                   help="append campaign heartbeats (progress, retries, "
                   "quarantines) to this repro-telemetry/1 JSONL journal")
    _add_format(p)

    p = sub.add_parser("predict", help="predict times for unseen sizes")
    p.add_argument("kernel")
    p.add_argument("--sizes", required=True)
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--replicates", type=int, default=3)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--mars", action="store_true",
                   help="force MARS counter models")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (-1 = all cores)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", action="store_true",
                   help="record a span tree of the run")
    _add_format(p)

    p = sub.add_parser(
        "lint",
        help="run the counter-invariant / workload-model static analysis",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--fail-on", choices=("info", "warning", "error"),
                   default="warning",
                   help="lowest severity that makes the exit code 1")
    p.add_argument("--select",
                   help="comma-separated rule ids or prefixes (e.g. "
                   "BF001,BF1)")
    p.add_argument("--no-launches", action="store_true",
                   help="skip the simulated kernel-launch checks")
    p.add_argument("--no-source", action="store_true",
                   help="skip the AST source lint")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--plan", metavar="FILE",
                   help="check a campaign plan (JSON) instead of the "
                   "tree: design rank, coverage, transfer, cost (BF5xx)")
    p.add_argument("--budget", type=float, metavar="SECONDS",
                   help="with --plan: fail when the estimated sweep "
                   "cost exceeds this many seconds")
    p.add_argument("--artifacts", nargs="+", metavar="PATH",
                   help="validate artifact files/directories against "
                   "the registered schemas (BF6xx) instead of the tree")

    p = sub.add_parser(
        "bench",
        help="run the hot-path micro-benchmarks, write BENCH_core.json",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads (CI smoke sizes)")
    p.add_argument("--out", default=None,
                   help="JSON report path (default: BENCH_core.json; with "
                   "--check the report is only written when --out is "
                   "given, so the baseline stays intact)")
    p.add_argument("--ops",
                   help="comma-separated subset of benchmark ops "
                   "(default: all)")
    p.add_argument("--check", action="store_true",
                   help="compare per-op speedups against the committed "
                   "baseline; exit 1 on regression")
    p.add_argument("--baseline", default="BENCH_core.json",
                   help="baseline report for --check "
                   "(default: BENCH_core.json)")
    p.add_argument("--threshold", type=float, default=None, metavar="PCT",
                   help="speedup drop (percent) that counts as a "
                   "regression (default: 30)")
    p.add_argument("--history", default="benchmarks/history.jsonl",
                   help="bench-history journal to append each run to")
    p.add_argument("--no-history", action="store_true",
                   help="skip the history append")
    _add_format(p)

    p = sub.add_parser(
        "report",
        help="structured bottleneck report (text/Markdown/single-file HTML)",
    )
    p.add_argument("kernel")
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--repo",
                   help="load the campaign from this ProfileRepository "
                   "root instead of profiling afresh")
    p.add_argument("--tag", help="repository campaign tag (with --repo)")
    p.add_argument("--sizes", help="comma-separated problem sizes for a "
                   "fresh campaign (default: the kernel's paper sweep)")
    p.add_argument("--replicates", type=int, default=1)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--repeats", type=int, default=3,
                   help="forests averaged for the importance ranking "
                   "(>1 enables the stability section)")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--response", choices=("time", "power"), default="time")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (-1 = all cores); the report is "
                   "identical for any value")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events",
                   help="JSONL event log (repro-events/1) to render as "
                   "the timeline section")
    p.add_argument("--trace", action="store_true",
                   help="record a span tree of the run and include the "
                   "hot-path section")
    p.add_argument("--out", help="write the report to a file instead of "
                   "stdout")
    p.add_argument("--format", choices=("text", "md", "html"),
                   default="text",
                   help="report format (default: text)")

    p = sub.add_parser("transfer", help="cross-architecture prediction")
    p.add_argument("kernel")
    p.add_argument("--train", default="GTX580")
    p.add_argument("--test", default="K20m")
    p.add_argument("--replicates", type=int, default=3)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (-1 = all cores)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", action="store_true",
                   help="record a span tree of the run")
    _add_format(p)

    p = sub.add_parser(
        "chaos",
        help="run a campaign under injected faults, report quarantines",
    )
    p.add_argument("kernel")
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--sizes", help="comma-separated problem sizes "
                   "(default: the kernel's paper sweep)")
    p.add_argument("--replicates", type=int, default=1)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes; quarantine decisions are "
                   "identical for any value")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign RNG seed and fault-plan seed")
    p.add_argument("--plan",
                   help="JSON fault plan: a list of specs (or "
                   "{'seed':..., 'specs':[...]}), each "
                   "{'site','mode','match','probability','payload'}")
    p.add_argument("--launch-rate", type=float, default=0.0,
                   help="probability an individual launch raises")
    p.add_argument("--nan-rate", type=float, default=0.0,
                   help="probability a launch returns NaN counters")
    p.add_argument("--worker-rate", type=float, default=0.0,
                   help="probability a worker process crashes on an item")
    p.add_argument("--torn-rate", type=float, default=0.0,
                   help="probability a repository write is torn "
                   "(needs --save-to)")
    p.add_argument("--transient", action="store_true",
                   help="launch faults fire once per run (retries recover)")
    p.add_argument("--retries", type=int, default=3,
                   help="attempts per launch before quarantine")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-launch deadline in seconds")
    p.add_argument("--save-to",
                   help="save the surviving campaign into this repository "
                   "and verify it (exercises repository.write faults)")
    p.add_argument("--serve", action="store_true",
                   help="chaos-test the prediction server instead: fit "
                   "the kernel, serve it, and drive concurrent retrying "
                   "clients against injected serve.request/registry.load "
                   "faults")
    p.add_argument("--clients", type=int, default=4,
                   help="(--serve) concurrent client connections")
    p.add_argument("--requests", type=int, default=32,
                   help="(--serve) total predict requests across clients")
    p.add_argument("--trees", type=int, default=60,
                   help="(--serve) forest size of the served fit")
    p.add_argument("--workers", type=int, default=4,
                   help="(--serve) server worker threads")
    p.add_argument("--request-rate", type=float, default=0.0,
                   help="(--serve) probability a predict handler raises "
                   "(serve.request raise -> typed internal_error)")
    p.add_argument("--delay-rate", type=float, default=0.0,
                   help="(--serve) probability a predict is delayed "
                   "(serve.request delay; trips deadlines)")
    p.add_argument("--delay-s", type=float, default=0.02,
                   help="(--serve) injected delay duration (default 0.02)")
    p.add_argument("--corrupt-times", type=int, default=0,
                   help="(--serve) first N registry loads fail corrupt "
                   "(registry.load corrupt; opens + recovers the breaker)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="(--serve) per-request deadline clients attach")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="(--serve) failures before the breaker opens")
    p.add_argument("--breaker-cooldown", type=int, default=4,
                   help="(--serve) rejections between half-open probes")
    p.add_argument("--telemetry", metavar="PATH",
                   help="(campaign mode) append campaign heartbeats to "
                   "this repro-telemetry/1 JSONL journal")
    _add_format(p)

    p = sub.add_parser(
        "repo",
        help="inspect/verify/migrate an on-disk profile repository",
    )
    p.add_argument("action", choices=("verify", "list", "migrate", "stats"))
    p.add_argument("root", help="repository root directory")
    p.add_argument("--quarantine", action="store_true",
                   help="(verify) move damaged campaigns into _quarantine/")
    p.add_argument("--full", action="store_true",
                   help="(verify) re-hash every campaign, ignoring the "
                   "verified-snapshot fast path")
    _add_format(p)

    p = sub.add_parser(
        "publish",
        help="fit a model and publish it into a fit registry for serving",
    )
    p.add_argument("kernel")
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--registry", default="./models",
                   help="fit-registry root directory (default: ./models)")
    p.add_argument("--repo",
                   help="train on a stored campaign from this "
                   "ProfileRepository root (versions the fit by the "
                   "campaign's manifest digest) instead of profiling "
                   "afresh")
    p.add_argument("--tag", help="campaign tag (with --repo) and "
                   "registry tag of the published fit")
    p.add_argument("--sizes", help="comma-separated problem sizes for a "
                   "fresh campaign (default: the kernel's paper sweep)")
    p.add_argument("--replicates", type=int, default=1)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--response", choices=("time", "power"), default="time")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (-1 = all cores)")
    p.add_argument("--seed", type=int, default=0)
    _add_format(p)

    p = sub.add_parser(
        "serve",
        help="serve predictions from a fit registry "
        "(line-delimited JSON-RPC)",
    )
    p.add_argument("--registry", default="./models",
                   help="fit-registry root directory (default: ./models)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="max requests coalesced into one stacked "
                   "predict_many pass (default: 32)")
    p.add_argument("--cache-size", type=int, default=8,
                   help="deserialized fits kept warm in the LRU "
                   "(default: 8)")
    p.add_argument("--socket", metavar="HOST:PORT",
                   help="listen on a local TCP socket instead of stdio; "
                   "prints 'repro-serve-ready host=H port=P' once bound "
                   "(port 0 picks a free port)")
    p.add_argument("--workers", type=int, default=4,
                   help="worker threads draining the request queue "
                   "(--socket only; default: 4)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="bounded request queue; overflow is shed with a "
                   "typed 'overloaded' error (--socket only; default: 64)")
    p.add_argument("--linger-ms", type=float, default=0.0,
                   help="batching window: wait up to this long for more "
                   "lines before running a predict pass — trades latency "
                   "for cross-client batch depth (--socket only; "
                   "default: 0)")
    p.add_argument("--request-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="default per-request deadline; requests may "
                   "override with params.deadline_ms (default: none)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive integrity failures that open a "
                   "model's circuit breaker (default: 5)")
    p.add_argument("--breaker-cooldown", type=int, default=8,
                   help="rejected requests between half-open breaker "
                   "probes (default: 8)")
    p.add_argument("--no-reload", action="store_true",
                   help="disable hot reload (registry digest watching)")
    p.add_argument("--telemetry", metavar="PATH",
                   help="append periodic metric snapshots to this "
                   "rotating repro-telemetry/1 JSONL journal")
    p.add_argument("--telemetry-interval", type=float, default=5.0,
                   metavar="SECONDS",
                   help="seconds between telemetry samples (default: 5)")
    p.add_argument("--flight-recorder", metavar="PATH",
                   help="keep a bounded ring of recent events, dumped "
                   "to PATH as repro-flightrec/1 on SIGTERM, worker "
                   "crash, or a breaker opening")

    p = sub.add_parser(
        "query",
        help="query a running 'repro serve' instance (retrying client)",
    )
    p.add_argument("method",
                   choices=("predict", "ping", "stats", "models",
                            "telemetry", "shutdown"))
    p.add_argument("kernel", nargs="?",
                   help="kernel name (predict only)")
    p.add_argument("--connect", default="127.0.0.1:7070",
                   metavar="HOST:PORT",
                   help="server address (default: 127.0.0.1:7070)")
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--tag", help="registry tag of the fit")
    p.add_argument("--version", help="fit version (default: latest)")
    p.add_argument("--X", metavar="JSON",
                   help="feature matrix, e.g. '[[1024, 2.5, 0.9, 4096]]' "
                   "(column order: the fit's feature_names)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="server-side deadline for this request")
    p.add_argument("--retries", type=int, default=4,
                   help="client attempts for transient errors "
                   "(overloaded/draining/breaker_open/deadline_exceeded)")
    p.add_argument("--max-elapsed", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock cap across all retry attempts")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="socket timeout per read/write (default: 10)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the deterministic retry jitter")
    _add_format(p)

    p = sub.add_parser(
        "top",
        help="live dashboard over a running server's telemetry RPC",
    )
    p.add_argument("--connect", default="127.0.0.1:7070",
                   metavar="HOST:PORT",
                   help="server address (default: 127.0.0.1:7070)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between scrapes (default: 2)")
    p.add_argument("--once", action="store_true",
                   help="print a single frame and exit (scriptable "
                   "with --format json)")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="socket timeout per scrape (default: 10)")
    _add_format(p)

    p = sub.add_parser(
        "trace",
        help="run another subcommand under tracing, print its span tree",
    )
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="text tree or Chrome-trace-compatible JSON")
    p.add_argument("--out", help="write the trace to a file")
    p.add_argument("wrapped", nargs=argparse.REMAINDER,
                   help="the subcommand (and its options) to trace")

    return parser


_COMMANDS = {
    "list-kernels": cmd_list_kernels,
    "list-archs": cmd_list_archs,
    "profile": cmd_profile,
    "analyze": cmd_analyze,
    "predict": cmd_predict,
    "transfer": cmd_transfer,
    "lint": cmd_lint,
    "bench": cmd_bench,
    "report": cmd_report,
    "chaos": cmd_chaos,
    "repo": cmd_repo,
    "publish": cmd_publish,
    "serve": cmd_serve,
    "query": cmd_query,
    "top": cmd_top,
    "trace": cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "trace", False) and args.command != "trace":
        from repro.obs import collect, trace

        with trace() as tracer, collect() as registry:
            args._tracer = tracer
            args._registry = registry
            return _COMMANDS[args.command](args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
