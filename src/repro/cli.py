"""Command-line interface: the "easy-to-use tool" face of BlackForest.

The paper's pitch is a tool a performance engineer can point at a
kernel and get readable feedback from; this module is that front end::

    python -m repro list-kernels
    python -m repro list-archs
    python -m repro profile reduce1 1048576 --arch GTX580
    python -m repro analyze reduce1 --arch GTX580
    python -m repro predict matrixMul --sizes 96,416,1936
    python -m repro transfer matrixMul --train GTX580 --test K20m
    python -m repro lint --format json
    python -m repro bench --quick
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    BlackForest,
    Campaign,
    HardwareScalingPredictor,
    ProblemScalingPredictor,
    Profiler,
    bottleneck_report,
    common_predictors,
    kernel_registry,
    prediction_report_text,
)
from repro.cpusim import I7_SANDY, XEON_E5
from repro.gpusim import GTX480, GTX580, K20M
from repro.viz import table

ARCHS = {a.name: a for a in (GTX480, GTX580, K20M, XEON_E5, I7_SANDY)}


def _arch(name: str):
    try:
        return ARCHS[name]
    except KeyError:
        raise SystemExit(
            f"unknown architecture {name!r}; choose from {sorted(ARCHS)}"
        )


def _kernel(name: str):
    registry = kernel_registry()
    try:
        return registry[name]
    except KeyError:
        raise SystemExit(
            f"unknown kernel {name!r}; run 'list-kernels' to see choices"
        )


def _parse_sizes(text: str) -> list[int]:
    try:
        return [int(tok) for tok in text.split(",") if tok.strip()]
    except ValueError:
        raise SystemExit(f"could not parse sizes {text!r} (expected e.g. 96,416)")


# ---------------------------------------------------------------------------


def cmd_list_kernels(_args) -> int:
    rows = []
    for name, kernel in sorted(kernel_registry().items()):
        doc = (kernel.__class__.__doc__ or "").strip().splitlines()[0]
        sweep = kernel.default_sweep()
        rows.append((name, f"{len(sweep)} sizes "
                     f"[{sweep[0]}..{sweep[-1]}]", doc[:60]))
    print(table(["kernel", "default sweep", "description"], rows))
    return 0


def cmd_list_archs(_args) -> int:
    rows = []
    for a in ARCHS.values():
        metrics = ", ".join(
            f"{k}={v:g}" for k, v in sorted(a.machine_metrics().items())
        )
        rows.append((a.name, a.family, metrics))
    print(table(["arch", "family", "machine metrics"], rows,
                title="Architectures (Table 2-style metrics)"))
    return 0


def cmd_profile(args) -> int:
    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    try:
        record = Profiler(arch, rng=args.seed).profile(kernel, args.problem)[0]
    except ValueError as exc:
        raise SystemExit(f"cannot profile {kernel.name!r}: {exc}")
    rows = sorted(record.counters.items())
    print(table(["counter", "value"], rows,
                title=f"{kernel.name} (problem={args.problem}) on {arch.name}"))
    print(f"\nexecution time: {record.time_s * 1e3:.4g} ms")
    if record.power_w is not None:
        print(f"average power : {record.power_w:.1f} W")
    return 0


def cmd_analyze(args) -> int:
    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    problems = _parse_sizes(args.sizes) if args.sizes else None
    print(f"collecting campaign for {kernel.name} on {arch.name}...",
          file=sys.stderr)
    campaign = Campaign(kernel, arch, rng=args.seed).run(
        problems=problems, replicates=args.replicates, n_jobs=args.jobs
    )
    fit = BlackForest(
        n_trees=args.trees, importance_repeats=args.repeats,
        n_jobs=args.jobs, rng=args.seed + 1,
    ).fit(campaign, response=args.response)
    print(bottleneck_report(fit, top_k=args.top))
    return 0


def cmd_predict(args) -> int:
    arch = _arch(args.arch)
    kernel = _kernel(args.kernel)
    sizes = _parse_sizes(args.sizes)
    print(f"training problem-scaling model for {kernel.name} on "
          f"{arch.name}...", file=sys.stderr)
    campaign = Campaign(kernel, arch, rng=args.seed).run(
        replicates=args.replicates
    )
    predictor = ProblemScalingPredictor(
        BlackForest(n_trees=args.trees, rng=args.seed + 1),
        prefer_mars=args.mars, rng=args.seed + 2,
    ).fit(campaign)
    times = predictor.predict(np.array(sizes, dtype=float))
    rows = [(s, f"{t * 1e3:.4g} ms") for s, t in zip(sizes, times)]
    print(table(["size", "predicted time"], rows,
                title=f"{kernel.name} on {arch.name}"))
    return 0


def cmd_transfer(args) -> int:
    train_arch = _arch(args.train)
    test_arch = _arch(args.test)
    kernel = _kernel(args.kernel)
    print(f"profiling {kernel.name} on {train_arch.name} and "
          f"{test_arch.name}...", file=sys.stderr)
    train = Campaign(kernel, train_arch, rng=args.seed).run(
        replicates=args.replicates
    )
    test = Campaign(kernel, test_arch, rng=args.seed + 1).run(
        replicates=args.replicates
    )
    common = common_predictors(train, test)
    hw = HardwareScalingPredictor(n_trees=args.trees, rng=args.seed + 2).fit(
        train, common=common
    )
    result = hw.assess(test)
    print(prediction_report_text(
        result.report,
        title=f"{kernel.name}: {train_arch.name} -> {test_arch.name}",
    ))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import BENCHMARKS, format_results, run_benchmarks, write_report

    ops = (
        [tok.strip() for tok in args.ops.split(",") if tok.strip()]
        if args.ops else None
    )
    try:
        results = run_benchmarks(
            ops=ops, quick=args.quick,
            log=lambda msg: print(msg, file=sys.stderr),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    write_report(results, args.out, quick=args.quick)
    print(format_results(results))
    print(f"\nreport written to {args.out}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import (
        Severity,
        as_json,
        lint_tree,
        max_severity,
        rule_table,
        summarize,
    )

    if args.list_rules:
        print(table(
            ["rule", "severity", "domain", "summary"], rule_table(),
            title="Lint rule catalogue (see docs/analysis.md)",
        ))
        return 0
    select = (
        [tok.strip() for tok in args.select.split(",") if tok.strip()]
        if args.select else None
    )
    findings = lint_tree(
        select=select,
        include_launches=not args.no_launches,
        include_source=not args.no_source,
    )
    if args.format == "json":
        print(as_json(findings))
    else:
        print(summarize(findings))
    worst = max_severity(findings)
    fail_on = Severity.parse(args.fail_on)
    return 1 if worst is not None and worst >= fail_on else 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlackForest: GPU bottleneck analysis & performance "
        "prediction (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-kernels", help="available kernel models")
    sub.add_parser("list-archs", help="available architectures")

    p = sub.add_parser("profile", help="profile one run, print all counters")
    p.add_argument("kernel")
    p.add_argument("problem", type=int)
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("analyze", help="full bottleneck analysis")
    p.add_argument("kernel")
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--sizes", help="comma-separated problem sizes "
                   "(default: the kernel's paper sweep)")
    p.add_argument("--replicates", type=int, default=1)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--repeats", type=int, default=3,
                   help="forests averaged for the importance ranking")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--response", choices=("time", "power"), default="time")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the campaign sweep and "
                   "forest fits (-1 = all cores); results are identical "
                   "for any value")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("predict", help="predict times for unseen sizes")
    p.add_argument("kernel")
    p.add_argument("--sizes", required=True)
    p.add_argument("--arch", default="GTX580")
    p.add_argument("--replicates", type=int, default=3)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--mars", action="store_true",
                   help="force MARS counter models")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "lint",
        help="run the counter-invariant / workload-model static analysis",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--fail-on", choices=("info", "warning", "error"),
                   default="warning",
                   help="lowest severity that makes the exit code 1")
    p.add_argument("--select",
                   help="comma-separated rule ids or prefixes (e.g. "
                   "BF001,BF1)")
    p.add_argument("--no-launches", action="store_true",
                   help="skip the simulated kernel-launch checks")
    p.add_argument("--no-source", action="store_true",
                   help="skip the AST source lint")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")

    p = sub.add_parser(
        "bench",
        help="run the hot-path micro-benchmarks, write BENCH_core.json",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads (CI smoke sizes)")
    p.add_argument("--out", default="BENCH_core.json",
                   help="JSON report path (default: BENCH_core.json)")
    p.add_argument("--ops",
                   help="comma-separated subset of benchmark ops "
                   "(default: all)")

    p = sub.add_parser("transfer", help="cross-architecture prediction")
    p.add_argument("kernel")
    p.add_argument("--train", default="GTX580")
    p.add_argument("--test", default="K20m")
    p.add_argument("--replicates", type=int, default=3)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)

    return parser


_COMMANDS = {
    "list-kernels": cmd_list_kernels,
    "list-archs": cmd_list_archs,
    "profile": cmd_profile,
    "analyze": cmd_analyze,
    "predict": cmd_predict,
    "transfer": cmd_transfer,
    "lint": cmd_lint,
    "bench": cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
