"""BlackForest — bottleneck analysis and performance prediction for
GPU-accelerated applications.

Reproduction of Madougou, Varbanescu, de Laat & van Nieuwpoort,
*"A Tool for Bottleneck Analysis and Performance Prediction for
GPU-accelerated Applications"* (2016), as a self-contained Python
library: a random-forest/PCA/MARS statistical pipeline over hardware
performance counters, with a simulated-GPU profiling substrate standing
in for the paper's GTX580/K20m + nvprof testbed.

Quickstart::

    from repro import (BlackForest, Campaign, GTX580,
                       ReductionKernel, bottleneck_report)

    campaign = Campaign(ReductionKernel(1), GTX580, rng=0).run()
    fit = BlackForest(rng=1).fit(campaign)
    print(bottleneck_report(fit))

Subpackages
-----------
``repro.core``
    The paper's contribution: the five-stage BlackForest pipeline,
    bottleneck detection, problem/hardware scaling prediction.
``repro.ml``
    Statistics substrate (random forest, PCA+varimax, MARS, GLMs,
    k-means, partial dependence) — numpy-only reimplementations of the
    R packages the paper uses.
``repro.gpusim``
    GPU performance simulator substrate (architectures, occupancy,
    coalescing/caches/bank conflicts, Hong–Kim-style timing, counters).
``repro.kernels``
    Workload models: CUDA SDK reductions, tiled matrix multiply,
    Rodinia Needleman–Wunsch, and extras.
``repro.profiling``
    nvprof-equivalent data collection: profiler, campaigns, repository.
``repro.analysis``
    Static analysis: counter-invariant linter, workload/arch validator,
    AST source lint (the ``repro lint`` CLI and the profiler's
    sanitizer mode).
``repro.faults``
    Deterministic fault injection (chaos plans) and the resilience
    primitives — retry policies, the recoverable-error taxonomy — that
    campaigns run under (see docs/robustness.md).
``repro.viz``
    Plain-text figures.
"""

from .core import (
    BlackForest,
    HeterogeneousPartitioner,
    BlackForestFit,
    FitArtifact,
    HardwareScalingFit,
    HardwareScalingPredictor,
    ImportanceRanking,
    PredictionReport,
    Predictor,
    ProblemScalingFit,
    ProblemScalingPredictor,
    bottleneck_report,
    common_predictors,
    detect_bottlenecks,
    fit_summary,
    importance_similarity,
    mixed_variable_set,
    per_arch_importance,
    prediction_report_text,
)
from .gpusim import (
    GTX480,
    GTX580,
    K20M,
    CounterSet,
    GPUArchitecture,
    GPUSimulator,
    KernelWorkload,
    Perturbation,
    occupancy,
)
from .kernels import (
    JacobiSolverKernel,
    MatMulKernel,
    StencilKernel,
    NeedlemanWunschKernel,
    ReductionKernel,
    TransposeKernel,
    VectorAddKernel,
    kernel_registry,
)
from .cpusim import CPUArchitecture, CPUSimulator, I7_SANDY, XEON_E5
from .analysis import (
    Finding,
    InvariantViolation,
    Severity,
    lint_tree,
)
from .faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    fault_injection,
)
from .profiling import (
    Campaign,
    CampaignKey,
    CampaignResult,
    Profiler,
    ProfileRepository,
    QuarantinedRun,
    RepositoryIntegrityError,
    RunRecord,
)

__version__ = "1.0.0"

__all__ = [
    "BlackForest",
    "BlackForestFit",
    "FitArtifact",
    "Predictor",
    "HeterogeneousPartitioner",
    "HardwareScalingFit",
    "HardwareScalingPredictor",
    "ImportanceRanking",
    "PredictionReport",
    "ProblemScalingFit",
    "ProblemScalingPredictor",
    "bottleneck_report",
    "common_predictors",
    "detect_bottlenecks",
    "fit_summary",
    "importance_similarity",
    "mixed_variable_set",
    "per_arch_importance",
    "prediction_report_text",
    "GTX480",
    "GTX580",
    "K20M",
    "CounterSet",
    "GPUArchitecture",
    "GPUSimulator",
    "KernelWorkload",
    "Perturbation",
    "occupancy",
    "JacobiSolverKernel",
    "MatMulKernel",
    "NeedlemanWunschKernel",
    "ReductionKernel",
    "StencilKernel",
    "TransposeKernel",
    "VectorAddKernel",
    "kernel_registry",
    "CPUArchitecture",
    "CPUSimulator",
    "I7_SANDY",
    "XEON_E5",
    "Campaign",
    "CampaignKey",
    "CampaignResult",
    "FaultPlan",
    "FaultSpec",
    "Profiler",
    "ProfileRepository",
    "QuarantinedRun",
    "RepositoryIntegrityError",
    "RetryPolicy",
    "RunRecord",
    "fault_injection",
    "Finding",
    "InvariantViolation",
    "Severity",
    "lint_tree",
    "__version__",
]


def __getattr__(name: str):
    if name == "Repository":
        from repro._compat import warn_once

        warn_once(
            "Repository",
            "repro.Repository was renamed to ProfileRepository; "
            "the old name will be removed",
        )
        return ProfileRepository
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
