"""Bounded retry with deterministic backoff for campaigns and clients.

The policy object is shared by the serial and parallel campaign paths
(and pickles into workers), so retry behaviour — like everything else
in the pipeline — is independent of ``n_jobs``. Backoff durations are
a pure function of the attempt number (``backoff_s * 2**(attempt-2)``,
optionally capped by ``max_backoff_s``), and elapsed-time bookkeeping
uses ``time.monotonic()`` so a wall-clock jump mid-campaign can neither
skip nor stretch a backoff.

The serving client (:mod:`repro.serve.client`) shares the same policy
with two additions that stay deterministic:

* **Seeded jitter** — ``jitter=0.3`` shaves up to 30% off each backoff,
  with the shave drawn from a SHA-256 hash of ``(seed, attempt, key)``
  rather than a process RNG. Two clients retrying the same overloaded
  server desynchronize (different keys → different waits) yet every
  rerun of a chaos test waits the exact same schedule.
* **``max_elapsed_s``** — a monotonic wall-clock cap across *all*
  attempts: once the next backoff would overrun it, retrying stops and
  the last error is returned. Bounds worst-case client latency under
  a long outage independently of ``max_attempts``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro._compat import warn_once

from .errors import FaultError

__all__ = ["RetryPolicy", "call_with_retry"]


def _jitter_uniform(seed: int, attempt: int, key: str) -> float:
    """Uniform in [0, 1) from a stable hash — the same discipline as
    :func:`repro.faults.plan._stable_uniform`, never a process RNG."""
    payload = repr((int(seed), int(attempt), str(key))).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-attempt resilience knobs for campaign launches and serve clients.

    Parameters
    ----------
    max_attempts:
        Total tries per call (1 = no retry). Exhausting them
        quarantines the run (campaigns) or surfaces the last error
        (clients).
    backoff_s:
        Base backoff; attempt ``k`` waits ``backoff_s * 2**(k-2)``
        seconds before running (0, the default, retries immediately —
        the simulator backend has no transient congestion to wait out).
    timeout_s:
        Cooperative per-attempt deadline. Checked between kernel
        launches and between replicates; an overrun raises
        :class:`~repro.faults.errors.LaunchTimeout`, which is retried
        and ultimately quarantined like any other fault. ``None``
        disables the deadline (and its clock reads) entirely.
    max_backoff_s:
        Cap on any single backoff, applied before jitter. ``None`` (the
        default) leaves the exponential schedule uncapped.
    jitter:
        Fraction of each backoff deterministically shaved off, in
        ``[0, 1]``: the wait becomes ``backoff * (1 - jitter * u)`` with
        ``u`` drawn from ``sha256((seed, attempt, key))``. 0 (the
        default) disables jitter and all hashing.
    seed:
        Seed folded into the jitter hash (so chaos experiments can
        re-roll schedules without changing keys).
    max_elapsed_s:
        Monotonic wall-clock budget across all attempts of one call;
        see :func:`call_with_retry`. ``None`` disables it.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    timeout_s: float | None = None
    max_backoff_s: float | None = None
    jitter: float = 0.0
    seed: int = 0
    max_elapsed_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_backoff_s is not None and self.max_backoff_s <= 0:
            raise ValueError("max_backoff_s must be positive (or None)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_elapsed_s is not None and self.max_elapsed_s <= 0:
            raise ValueError("max_elapsed_s must be positive (or None)")

    def backoff_for(self, attempt: int, key: str | None = None) -> float:
        """Seconds to wait before attempt ``attempt`` (1-based; 0 for
        the first attempt).

        ``key`` names the call being retried (request id, run key) and
        feeds the jitter hash; with ``jitter > 0`` and no key the old
        one-argument signature still works but warns once and jitters
        on an empty key (every caller gets the same schedule — safe but
        synchronized, the thundering herd jitter exists to avoid).
        """
        if attempt <= 1 or self.backoff_s <= 0:
            return 0.0
        wait = self.backoff_s * (2.0 ** (attempt - 2))
        if self.max_backoff_s is not None:
            wait = min(wait, self.max_backoff_s)
        if self.jitter > 0:
            if key is None:
                warn_once(
                    "retry-backoff-jitter-key",
                    "RetryPolicy.backoff_for(attempt) without key= is "
                    "deprecated when jitter > 0; pass key=<call id> so "
                    "concurrent retriers desynchronize (jittering on an "
                    "empty key for now)",
                )
                key = ""
            wait *= 1.0 - self.jitter * _jitter_uniform(
                self.seed, attempt, key
            )
        return wait

    def deadline(self) -> float | None:
        """Monotonic per-attempt deadline starting now, or None."""
        if self.timeout_s is None:
            return None
        return time.monotonic() + self.timeout_s


def call_with_retry(
    fn,
    policy: RetryPolicy,
    recoverable: tuple[type[BaseException], ...] = (FaultError,),
    on_retry=None,
    sleep=time.sleep,
    retry_key: str | None = None,
):
    """Run ``fn(attempt)`` under the policy.

    Returns ``(result, None, attempts)`` on success or
    ``(None, last_exception, attempts)`` once attempts — or the
    policy's ``max_elapsed_s`` wall-clock budget — are exhausted.
    Non-recoverable exceptions propagate immediately — a misconfigured
    campaign (``ValueError``/``TypeError``) must fail fast, not churn
    through retries. ``on_retry(attempt, exc)`` is called before each
    re-attempt (obs accounting hooks in the campaign layer).
    ``retry_key`` names this call for the policy's seeded jitter.
    """
    started = (
        time.monotonic() if policy.max_elapsed_s is not None else None
    )
    last_exc: BaseException | None = None
    attempt = 0
    while True:
        attempt += 1
        wait = policy.backoff_for(attempt, key=retry_key)
        if started is not None and attempt > 1:
            # Give up early when the next backoff would blow the
            # wall-clock budget; report the attempts actually made.
            if (time.monotonic() - started) + wait > policy.max_elapsed_s:
                return None, last_exc, attempt - 1
        if wait > 0:
            # Monotonic bookkeeping: sleep() can wake early on signals;
            # top up until the full backoff has elapsed.
            deadline = time.monotonic() + wait
            remaining = wait
            while remaining > 0:
                sleep(remaining)
                remaining = deadline - time.monotonic()
        try:
            return fn(attempt), None, attempt
        except recoverable as exc:
            last_exc = exc
            if attempt >= policy.max_attempts:
                return None, exc, attempt
            if on_retry is not None:
                on_retry(attempt, exc)
