"""Bounded retry with deterministic backoff for campaign launches.

The policy object is shared by the serial and parallel campaign paths
(and pickles into workers), so retry behaviour — like everything else
in the pipeline — is independent of ``n_jobs``. Backoff durations are
a pure function of the attempt number (``backoff_s * 2**(attempt-1)``),
and elapsed-time bookkeeping uses ``time.monotonic()`` so a wall-clock
jump mid-campaign can neither skip nor stretch a backoff.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .errors import FaultError

__all__ = ["RetryPolicy", "call_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-launch resilience knobs for :meth:`Campaign.run`.

    Parameters
    ----------
    max_attempts:
        Total tries per launch (1 = no retry). Exhausting them
        quarantines the run instead of aborting the campaign.
    backoff_s:
        Base backoff; attempt ``k`` waits ``backoff_s * 2**(k-2)``
        seconds before running (0, the default, retries immediately —
        the simulator backend has no transient congestion to wait out).
    timeout_s:
        Cooperative per-launch deadline. Checked between kernel launches
        and between replicates; an overrun raises
        :class:`~repro.faults.errors.LaunchTimeout`, which is retried
        and ultimately quarantined like any other fault. ``None``
        disables the deadline (and its clock reads) entirely.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt`` (1-based; 0 for
        the first attempt)."""
        if attempt <= 1 or self.backoff_s <= 0:
            return 0.0
        return self.backoff_s * (2.0 ** (attempt - 2))

    def deadline(self) -> float | None:
        """Monotonic deadline for a launch starting now, or None."""
        if self.timeout_s is None:
            return None
        return time.monotonic() + self.timeout_s


def call_with_retry(
    fn,
    policy: RetryPolicy,
    recoverable: tuple[type[BaseException], ...] = (FaultError,),
    on_retry=None,
    sleep=time.sleep,
):
    """Run ``fn(attempt)`` under the policy.

    Returns ``(result, None, attempts)`` on success or
    ``(None, last_exception, attempts)`` once attempts are exhausted.
    Non-recoverable exceptions propagate immediately — a misconfigured
    campaign (``ValueError``/``TypeError``) must fail fast, not churn
    through retries. ``on_retry(attempt, exc)`` is called before each
    re-attempt (obs accounting hooks in the campaign layer).
    """
    attempt = 0
    while True:
        attempt += 1
        wait = policy.backoff_for(attempt)
        if wait > 0:
            # Monotonic bookkeeping: sleep() can wake early on signals;
            # top up until the full backoff has elapsed.
            deadline = time.monotonic() + wait
            remaining = wait
            while remaining > 0:
                sleep(remaining)
                remaining = deadline - time.monotonic()
        try:
            return fn(attempt), None, attempt
        except recoverable as exc:
            if attempt >= policy.max_attempts:
                return None, exc, attempt
            if on_retry is not None:
                on_retry(attempt, exc)
