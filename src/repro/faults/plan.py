"""Deterministic, seed-driven fault plans (the chaos layer).

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules installed
with the :func:`fault_injection` context manager. Production code asks
:func:`should_inject` at a handful of *sites*; with no plan installed
that is one module-global load plus an ``is None`` check — the same
zero-cost-when-disabled discipline as :mod:`repro.obs`.

Determinism is the whole point: a fault decision is a pure function of
``(plan seed, site, rule, context)``. Rules either match their context
exactly (``match={"problem": 4096}`` fires on that problem wherever and
whenever it runs) or fire with a probability derived from a SHA-256
hash of the context — never from call order, process identity, or a
shared mutable counter. A campaign therefore quarantines the *same*
runs under ``n_jobs=1`` and ``n_jobs=16``, and a chaos test can pin its
exact outcome.

Injection sites and the modes they accept:

========================  =============================================
site                      modes
========================  =============================================
``profiler.launch``       ``raise``, ``hang``, ``nan_counters``,
                          ``drop_counters``
``gpusim.launch``         ``raise``, ``truncate_trace``
``parallel.worker``       ``crash``
``repository.write``      ``torn_file``, ``corrupt_file``
``serve.request``         ``raise``, ``delay``
``registry.load``         ``corrupt``, ``missing``
========================  =============================================

The two serve-side sites drive ``repro chaos --serve``:
``serve.request`` fires inside the prediction server's request handling
(``raise`` → typed ``internal_error`` response, ``delay`` → sleep
``payload={"seconds": …}`` so deadlines trip), and ``registry.load``
fires inside :meth:`FitRegistry.load <repro.serve.registry.FitRegistry.load>`
(``corrupt`` → :class:`RegistryIntegrityError
<repro.serve.registry.RegistryIntegrityError>`, feeding the circuit
breaker; ``missing`` → :class:`FileNotFoundError`).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "fault_injection",
    "active_plan",
    "should_inject",
    "SITES",
]

#: Valid modes per injection site.
SITES: dict[str, tuple[str, ...]] = {
    "profiler.launch": ("raise", "hang", "nan_counters", "drop_counters"),
    "gpusim.launch": ("raise", "truncate_trace"),
    "parallel.worker": ("crash",),
    "repository.write": ("torn_file", "corrupt_file"),
    "serve.request": ("raise", "delay"),
    "registry.load": ("corrupt", "missing"),
}


def _stable_uniform(seed: int, site: str, ctx: dict) -> float:
    """Uniform in [0, 1) from a cross-process-stable hash of the context.

    ``repr`` of the sorted context items feeds SHA-256 (never ``hash()``,
    which is salted per process), so the draw is identical in every
    worker and on every run with the same plan seed.
    """
    payload = repr((seed, site, sorted(ctx.items()))).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """One chaos rule: where, what, and when to inject.

    Parameters
    ----------
    site:
        Injection site (a key of :data:`SITES`).
    mode:
        Failure mode, validated against the site.
    match:
        Context equality constraints; the rule only considers contexts
        where every listed key equals the given value (e.g.
        ``{"problem": 4096}``). Keys absent from the context never
        match. ``None`` matches every context of the site.
    probability:
        Chance the rule fires on a matching context, decided by a
        stable hash of the context (default 1.0 = always).
    payload:
        Mode-specific knobs — ``counters`` (list) for
        ``nan_counters``/``drop_counters``, ``fraction`` (float) for
        ``truncate_trace``/``torn_file``. The special key ``times``
        (int, any mode) bounds how often the rule fires per matching
        context: ``{"times": 1}`` models a *transient* fault — the first
        attempt fails, the retry succeeds. Counted per plan instance
        (i.e. per process); a launch and all its retries run in one
        process, so outcomes stay independent of ``n_jobs``.
    """

    site: str
    mode: str
    match: tuple = ()
    probability: float = 1.0
    payload: tuple = ()

    def __init__(
        self,
        site: str,
        mode: str,
        match: dict | None = None,
        probability: float = 1.0,
        payload: dict | None = None,
    ) -> None:
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r}; choose from {sorted(SITES)}"
            )
        if mode not in SITES[site]:
            raise ValueError(
                f"mode {mode!r} is invalid for site {site!r} "
                f"(valid: {SITES[site]})"
            )
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        object.__setattr__(self, "site", site)
        object.__setattr__(self, "mode", mode)
        object.__setattr__(
            self, "match", tuple(sorted((match or {}).items()))
        )
        object.__setattr__(self, "probability", float(probability))
        object.__setattr__(
            self, "payload", tuple(sorted((payload or {}).items()))
        )

    @property
    def payload_dict(self) -> dict:
        return dict(self.payload)

    def matches(self, ctx: dict) -> bool:
        for key, value in self.match:
            if key not in ctx or ctx[key] != value:
                return False
        return True

    def fires(self, seed: int, ctx: dict) -> bool:
        if not self.matches(ctx):
            return False
        if self.probability >= 1.0:
            return True
        if self.probability <= 0.0:
            return False
        # The spec itself is folded into the hash so two probabilistic
        # rules at one site make independent decisions.
        return (
            _stable_uniform(seed, f"{self.site}:{self.mode}:{self.match}", ctx)
            < self.probability
        )


@dataclass
class FaultPlan:
    """An ordered rule set plus the seed driving probabilistic rules.

    ``decide`` returns the first rule that fires for a context; fired
    decisions are appended to :attr:`events` for reporting (per-process
    bookkeeping only — determinism never depends on it).
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    events: list[tuple[str, str, dict]] = field(default_factory=list)
    #: Fire counts per (rule index, context) — only consulted by rules
    #: with a ``times`` payload bound.
    _fired: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected FaultSpec, got {type(spec).__name__}")

    def decide(self, site: str, ctx: dict) -> FaultSpec | None:
        for rule_idx, spec in enumerate(self.specs):
            if spec.site != site or not spec.fires(self.seed, ctx):
                continue
            limit = spec.payload_dict.get("times")
            if limit is not None:
                key = (rule_idx, repr(sorted(ctx.items())))
                if self._fired.get(key, 0) >= limit:
                    continue
                self._fired[key] = self._fired.get(key, 0) + 1
            self.events.append((site, spec.mode, dict(ctx)))
            return spec
        return None

    def summary(self) -> dict:
        """Per (site, mode) fired-event counts, for chaos reports."""
        counts: dict[str, int] = {}
        for site, mode, _ in self.events:
            key = f"{site}:{mode}"
            counts[key] = counts.get(key, 0) + 1
        return counts


# -- module-level injection state --------------------------------------------

_PLAN: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The installed fault plan, or None when injection is disabled."""
    return _PLAN


def should_inject(site: str, **ctx) -> FaultSpec | None:
    """The hook production code calls at an injection site.

    Returns the firing :class:`FaultSpec` (the caller enacts the
    failure) or None. Disabled cost: one global load, one ``is None``
    check.
    """
    plan = _PLAN
    if plan is None:
        return None
    spec = plan.decide(site, ctx)
    if spec is not None:
        from repro.obs import metrics as _metrics

        _metrics.inc("faults.injected", site=site, mode=spec.mode)
    return spec


@contextmanager
def fault_injection(plan: FaultPlan | None):
    """Install a fault plan for the duration of the block.

    Passing ``None`` disables injection inside the block (useful to
    shield a sub-step from an outer plan). The previous plan is always
    restored, so chaos experiments nest without leaking state.
    """
    global _PLAN
    if plan is not None and not isinstance(plan, FaultPlan):
        raise TypeError("fault_injection expects a FaultPlan or None")
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous
