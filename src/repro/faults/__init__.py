"""Fault injection and resilience primitives (the chaos layer).

Real profiling campaigns lose runs to hung launches, crashed workers
and torn repository files; the paper's pipeline assumes none of that
ever happens. ``repro.faults`` makes those failures injectable *on
demand and deterministically*, so the resilient execution paths they
exercise — per-launch retry, quarantine-not-abort, checkpoint/resume,
repository verification — can be pinned by tests instead of trusted.

Two halves:

* **Injection** (:class:`FaultPlan`, :class:`FaultSpec`,
  :func:`fault_injection`) — seed-driven rules fired at named sites in
  the simulator, profiler, parallel workers and repository. Decisions
  are pure functions of (seed, site, context): independent of call
  order, ``n_jobs`` and process identity. With no plan installed the
  hook is one global load plus an ``is None`` check.
* **Resilience** (:class:`RetryPolicy`, the error taxonomy) — what
  :meth:`Campaign.run <repro.profiling.Campaign.run>` uses to retry,
  time out and quarantine launches instead of aborting.

Quickstart::

    from repro import Campaign, GTX580, ReductionKernel
    from repro.faults import FaultPlan, FaultSpec, fault_injection

    plan = FaultPlan([
        FaultSpec("profiler.launch", "raise", match={"problem": 65536}),
    ])
    with fault_injection(plan):
        result = Campaign(ReductionKernel(1), GTX580, rng=0).run()
    assert len(result.quarantined) == 1   # quarantined, not crashed

See docs/robustness.md for the full fault/retry/checkpoint semantics.
"""

from .errors import FaultError, InjectedFault, LaunchTimeout, WorkerCrash
from .plan import (
    SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_injection,
    should_inject,
)
from .retry import RetryPolicy, call_with_retry

__all__ = [
    "FaultError",
    "InjectedFault",
    "LaunchTimeout",
    "WorkerCrash",
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "active_plan",
    "fault_injection",
    "should_inject",
    "RetryPolicy",
    "call_with_retry",
]
