"""Exception types raised by injected (and real) execution faults.

The hierarchy mirrors what a real profiling campaign loses runs to:

* :class:`InjectedFault` — a launch that errored outright (nvprof
  returning non-zero, a driver reset, a crashed binary);
* :class:`LaunchTimeout` — a launch that hung; the harness cannot tell
  a hang from slowness, so hangs surface as timeouts;
* :class:`WorkerCrash` — a parallel worker process dying mid-chunk.

All derive from :class:`FaultError`, which the campaign layer treats as
*recoverable*: a failed launch is retried under the active
:class:`~repro.faults.retry.RetryPolicy` and quarantined — never allowed
to abort the campaign — once its attempts are exhausted.
"""

from __future__ import annotations

__all__ = ["FaultError", "InjectedFault", "LaunchTimeout", "WorkerCrash"]


class FaultError(RuntimeError):
    """Base class of recoverable execution faults (real or injected)."""


class InjectedFault(FaultError):
    """A launch failure raised by the fault-injection layer."""


class LaunchTimeout(FaultError):
    """A launch exceeded its (cooperative) deadline — or hung.

    Raised both by the real per-launch timeout in
    :meth:`repro.profiling.Profiler.profile` and by ``mode="hang"``
    fault specs, which model a hung launch as its inevitable timeout.
    """


class WorkerCrash(FaultError):
    """A parallel worker process died mid-chunk.

    Injected inside the worker (``site="parallel.worker"``); the
    campaign recovers by re-running the lost chunk's items in the
    parent process, which is bit-identical because every problem owns a
    pre-spawned RNG stream.
    """
