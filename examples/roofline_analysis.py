#!/usr/bin/env python3
"""Roofline placement of every bundled kernel, vs. BlackForest's verdict.

The roofline model answers "how far from the hardware ceiling does this
kernel run?" from two numbers (operational intensity, achieved
GFLOP/s); BlackForest answers "*why* is it not at the ceiling?" from
the counters. This example runs both and shows where they agree — and
where the roofline alone is blind (Needleman-Wunsch sits far below its
bandwidth ceiling, and only the counter analysis reveals the
latency/occupancy story).

Run:  python examples/roofline_analysis.py
"""

from repro import BlackForest, Campaign, GTX580
from repro.gpusim import roofline_chart, roofline_point
from repro.kernels import (
    MatMulKernel,
    NeedlemanWunschKernel,
    ReductionKernel,
    StencilKernel,
)
from repro.viz import table

WORKLOADS = [
    (ReductionKernel(1), 1 << 22),
    (ReductionKernel(6), 1 << 23),
    (MatMulKernel(), 1024),
    (NeedlemanWunschKernel(), 1024),
    (StencilKernel(), 1024),
]

points = [roofline_point(k, p, GTX580) for k, p in WORKLOADS]
print(roofline_chart(points, GTX580))

print("\ncross-checking the roofline against BlackForest's diagnosis:\n")
rows = []
for (kernel, _), point in zip(WORKLOADS, points):
    campaign = Campaign(kernel, GTX580, rng=0).run(
        problems=kernel.default_sweep()[::4], replicates=2
    )
    fit = BlackForest(n_trees=120, use_pca=False, rng=1).fit(campaign)
    rows.append((
        kernel.name,
        point.bound,
        f"{100 * point.ceiling_fraction:.0f}%",
        fit.primary_bottleneck.pattern.key,
    ))
print(table(
    ["kernel", "roofline bound", "of ceiling", "BlackForest bottleneck"],
    rows,
))

print("""
Reading:
 * reduce6 runs at the bandwidth ceiling; both tools call it done.
 * reduce1 is below its ceiling and the counters say why: bank-conflict
   replays burn issue slots the roofline cannot see.
 * needleman-wunsch is the telling case — nominally bandwidth-bound by
   intensity yet at a small fraction of the ceiling; the counters
   attribute the gap to memory-operation and conflict pressure at
   16-thread occupancy, which a pure roofline misdiagnoses.
""")
