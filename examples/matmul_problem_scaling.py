#!/usr/bin/env python3
"""Predict matrix-multiply execution times for unseen problem sizes.

The paper's Section 6.1.1 workflow: collect counter data for tiled
matrix multiplication over 24 matrix sizes, fit BlackForest, reduce to
the most influential predictors, model each retained counter as a
(generalized) linear model of the matrix size, and combine the models
with the forest to predict execution times for matrix sizes never
profiled.

Run:  python examples/matmul_problem_scaling.py
"""

import numpy as np

from repro import (
    BlackForest,
    Campaign,
    GTX580,
    MatMulKernel,
    ProblemScalingPredictor,
    prediction_report_text,
)
from repro.viz import importance_chart, table

kernel = MatMulKernel()

# ---- data collection: the paper's 24-size sweep, a few runs each ----
train_campaign = Campaign(kernel, GTX580, rng=0).run(replicates=3)
print(f"training campaign: {len(train_campaign)} runs, "
      f"sizes {train_campaign.problems()[0]}..{train_campaign.problems()[-1]}")

# ---- fit + problem-scaling predictor ----
predictor = ProblemScalingPredictor(BlackForest(rng=1), rng=2).fit(train_campaign)
fit = predictor.fit_

print()
print(importance_chart(fit.importance, k=10,
                       title="MM variable importance (Fig. 5a analogue)"))

# ---- the Fig. 5c analogue: counter models vs matrix size ----
print()
print(table(
    ["counter", "model", "R^2", "residual deviance"],
    predictor.counter_models_.quality_table(),
    title="Counter models (Fig. 5c analogue)",
))

# ---- predict unseen sizes (not in the training sweep) ----
unseen = [96, 208, 416, 608, 928, 1360, 1936]
eval_campaign = Campaign(kernel, GTX580, rng=99).run(problems=unseen)
report = predictor.report(eval_campaign)

print()
print(prediction_report_text(
    report, title="Predicted vs measured times for unseen sizes (Fig. 5b analogue)"
))

assert report.explained_variance > 0.8, "problem scaling should be accurate"

# Bonus: extrapolate a smooth curve of predictions across the range.
sizes = np.arange(64, 2049, 64, dtype=float)
times = predictor.predict(sizes)
print()
print("predicted scaling curve (size -> ms):")
print("  " + "  ".join(f"{int(s)}:{t * 1e3:.2f}" for s, t in
                       list(zip(sizes, times))[::4]))
