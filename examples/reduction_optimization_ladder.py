#!/usr/bin/env python3
"""Walk the CUDA SDK reduction optimization ladder with BlackForest.

The SDK's seven reduction kernels each fix the bottleneck the previous
one exposed (divergent modulo -> bank conflicts -> idle threads -> ...).
This example reproduces the paper's Section 5 workflow across ALL
variants: for each kernel it collects a profiling campaign, fits the
pipeline, and reports the simulated runtime at a fixed array length,
the top predictors and the detected primary bottleneck — showing how
"the most important counter for reduce1 is the least important for
reduce2" and how the bandwidth-bound character emerges by reduce6.

Run:  python examples/reduction_optimization_ladder.py
"""

from repro import BlackForest, Campaign, GTX580, ReductionKernel
from repro.gpusim import GPUSimulator
from repro.viz import table

PROBE_N = 1 << 22

rows = []
sim = GPUSimulator(GTX580)
for variant in range(7):
    kernel = ReductionKernel(variant)

    # headline runtime at a fixed probe size (deterministic simulation)
    counters, time_s, _ = sim.run(kernel.workloads(PROBE_N, GTX580))

    # statistical analysis over the full sweep
    campaign = Campaign(kernel, GTX580, rng=variant).run()
    fit = BlackForest(rng=100 + variant).fit(
        campaign, include_characteristics=False
    )

    primary = fit.primary_bottleneck
    rows.append(
        (
            kernel.name,
            f"{time_s * 1e6:.0f} us",
            f"{counters['shared_replay_overhead']:.2f}",
            f"{counters['dram_read_throughput']:.0f} GB/s",
            fit.importance.names[0],
            primary.pattern.key if primary else "-",
        )
    )

print(table(
    ["kernel", f"time @ n=2^22", "shared_replay", "dram read",
     "top predictor", "primary bottleneck"],
    rows,
    title="CUDA SDK reduction ladder on (simulated) GTX580",
))

print("""
Reading the ladder:
 * reduce0 -> reduce1 removes the divergent modulo;
 * reduce1 pays for it with shared-memory bank conflicts
   (nonzero shared_replay_overhead, conflict bottleneck);
 * reduce2 switches to sequential addressing: conflicts vanish and the
   analysis pivots to memory-subsystem counters;
 * reduce3..5 halve the block count, unroll the last warp and then the
   whole tree;
 * reduce6 processes multiple elements per thread and saturates DRAM
   bandwidth — the optimization endpoint for a reduction.
""")
