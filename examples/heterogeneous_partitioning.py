#!/usr/bin/env python3
"""Heterogeneous CPU+GPU workload partitioning from two BlackForest models.

The paper's closing vision (Section 7): "our approach is very useful in
the context of emerging CPU+GPUs heterogeneous systems, where
performance modeling is key to determine workload partitioning ... we
can provide a unified modeling approach for heterogeneous platforms."

This example realizes it for the 2-D stencil: one problem-scaling model
is trained on a Xeon E5 campaign, one on a GTX580 campaign, and a
static partitioner chooses — per total problem size — the split that
lets both devices finish together.

Run:  python examples/heterogeneous_partitioning.py
"""

from repro import (
    BlackForest,
    Campaign,
    GTX580,
    HeterogeneousPartitioner,
    ProblemScalingPredictor,
    XEON_E5,
)
from repro.kernels import StencilKernel
from repro.kernels.cpu import CpuStencilKernel
from repro.viz import table

SIZES = [128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072]

print("training the GPU model (GTX580)...")
gpu_campaign = Campaign(StencilKernel(), GTX580, rng=0).run(
    problems=SIZES, replicates=2
)
gpu_model = ProblemScalingPredictor(
    BlackForest(n_trees=150, use_pca=False, min_samples_leaf=3, rng=1), rng=2
).fit(gpu_campaign)

print("training the CPU model (Xeon E5-2670)...")
cpu_campaign = Campaign(CpuStencilKernel(), XEON_E5, rng=3).run(
    problems=SIZES, replicates=2
)
cpu_model = ProblemScalingPredictor(
    BlackForest(n_trees=150, use_pca=False, min_samples_leaf=3, rng=4), rng=5
).fit(cpu_campaign)

partitioner = HeterogeneousPartitioner(cpu_model, gpu_model, min_chunk=128.0)

rows = []
for total in (256.0, 512.0, 1024.0, 2048.0, 3072.0):
    plan = partitioner.plan(total)
    rows.append((
        int(total),
        f"{100 * plan.cpu_share:.0f}% / {100 * (1 - plan.cpu_share):.0f}%",
        f"{plan.makespan_s * 1e3:.3f} ms",
        f"{plan.best_single_device_s * 1e3:.3f} ms",
        f"{plan.speedup_vs_best_device:.2f}x",
    ))

print()
print(table(
    ["total size", "CPU / GPU share", "co-run makespan",
     "best single device", "speedup"],
    rows,
    title="Static stencil partitioning, Xeon E5-2670 + GTX580",
))

print("""
Reading: at small sizes the GPU's launch overhead and the CPU's
competitive bandwidth keep work on one device; as the grid grows the
partitioner converges to the devices' bandwidth ratio, and co-running
beats the best single device — the Glinda/StarPU scenario the paper
cites, driven end to end by two BlackForest models.
""")
