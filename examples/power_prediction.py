#!/usr/bin/env python3
"""Power draw as the response variable (the paper's Section 7 extension).

"Our method is not limited to predicting execution time - one could use
other metrics of interest, such as power, as response variable. For
instance, on the Kepler architecture, power draw can be directly read
using the system management interface. Using BF, one can then both
assess the power consumption behavior ... and predict that for unseen
problem sizes, or simply evaluate computing efficiency in terms of
performance per watt."

This example does all three on a simulated K20m:

1. fit BlackForest with power as the response and read which counters
   drive the board's draw;
2. predict power for unseen problem sizes;
3. rank the reduction kernels by performance per watt.

Run:  python examples/power_prediction.py
"""

import numpy as np

from repro import BlackForest, Campaign, K20M, ReductionKernel
from repro.ml import explained_variance
from repro.viz import importance_chart, table

sizes = [int(s) for s in np.round(np.logspace(16, 24, 60, base=2.0))]

# ---- 1. power consumption behaviour of reduce6 ----
campaign = Campaign(ReductionKernel(6), K20M, rng=0).run(problems=sizes)
fit = BlackForest(rng=1, importance_repeats=3).fit(campaign, response="power")

print(importance_chart(
    fit.importance, k=8,
    title="What drives reduce6's power draw on the K20m?",
))
print(f"\npower model: OOB explained variance "
      f"{100 * fit.oob_explained_variance:.1f}%")
print("reading: power tracks memory/issue *activity rates* "
      "(throughputs, ipc), not raw work volumes")

# ---- 2. predict power for unseen sizes via the fitted forest ----
pred = fit.forest.predict(fit.X_test)
print(f"held-out power predictions: explained variance "
      f"{100 * explained_variance(fit.y_test, pred):.1f}%, "
      f"mean |error| "
      f"{np.mean(np.abs(pred - fit.y_test)):.1f} W")

# ---- 3. performance per watt across the reduction ladder ----
rows = []
for variant in range(7):
    c = Campaign(ReductionKernel(variant), K20M, rng=variant).run(
        problems=[1 << 22], replicates=5
    )
    t = float(np.mean(c.times()))
    p = float(np.mean(c.powers()))
    elems_per_joule = (1 << 22) / (t * p)
    rows.append((f"reduce{variant}", f"{t * 1e6:.0f} us", f"{p:.0f} W",
                 f"{elems_per_joule / 1e6:.1f} Melem/J"))

print()
print(table(["kernel", "time @ 2^22", "avg power", "efficiency"], rows,
            title="Performance per watt across the reduction ladder (K20m)"))
print("\nthe optimized kernels finish faster at comparable draw, so the "
      "energy per reduced element falls down the ladder.")
