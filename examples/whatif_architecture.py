#!/usr/bin/env python3
"""What-if architecture studies with the GPU simulator substrate.

Beyond reproducing the paper, the simulator makes the *hardware* a
parameter: this example sweeps derived GTX580 variants (more SMs, more
bandwidth, bigger L1) and shows which knob actually helps each kernel —
the kind of question the paper's Stargazer-style related work asks of a
full GPU simulator, answered here in milliseconds.

Run:  python examples/whatif_architecture.py
"""

from repro import GTX580, MatMulKernel, NeedlemanWunschKernel, ReductionKernel
from repro.gpusim import GPUSimulator
from repro.viz import table

VARIANTS = [
    ("baseline GTX580", GTX580),
    ("+50% SMs (24)", GTX580.with_overrides(n_sms=24)),
    ("+50% bandwidth", GTX580.with_overrides(mem_bandwidth_gbs=288.6)),
    ("4x L1 cache", GTX580.with_overrides(
        l1=GTX580.l1.__class__(64 * 1024, 128, 4))),
    ("2x warp schedulers", GTX580.with_overrides(
        warp_schedulers=4, dispatch_units_per_scheduler=1)),
]

WORKLOADS = [
    (ReductionKernel(1), 1 << 22, "reduce1 (bank conflicts)"),
    (ReductionKernel(6), 1 << 24, "reduce6 (bandwidth bound)"),
    (MatMulKernel(), 1024, "matrixMul n=1024"),
    (NeedlemanWunschKernel(), 2048, "needleman-wunsch L=2048"),
]

rows = []
baseline_times = {}
for kernel, problem, label in WORKLOADS:
    row = [label]
    for name, arch in VARIANTS:
        sim = GPUSimulator(arch)
        _, t, _ = sim.run(kernel.workloads(problem, arch))
        if name.startswith("baseline"):
            baseline_times[label] = t
            row.append(f"{t * 1e3:.2f} ms")
        else:
            speedup = baseline_times[label] / t
            row.append(f"{speedup:.2f}x")
    rows.append(tuple(row))

print(table(
    ["workload"] + [name for name, _ in VARIANTS],
    rows,
    title="What-if speedups over the baseline GTX580",
))

print("""
Expected reading:
 * reduce6 (bandwidth-bound) only responds to the bandwidth knob;
 * matrixMul (issue/LSU-bound) responds to more SMs, not bandwidth;
 * needleman-wunsch (latency-bound at 16-thread blocks) responds to
   neither dramatically — its bottleneck is the launch geometry itself;
 * reduce1's conflict replays burn issue slots, so extra SMs help while
   extra bandwidth does not.
""")
