#!/usr/bin/env python3
"""Two problem characteristics and MARS interaction terms.

The paper chose MARS for the counter models because it handles
"nonlinearities and parameter interactions" — interactions only exist
when a problem has more than one characteristic. This example uses the
iterative Jacobi solver, whose problems are (grid size, iterations)
pairs: counters grow like size^2 x iterations, so the MARS models need
genuine interaction (degree-2) basis functions, and the prediction flow
must fill in *two* characteristic columns.

Run:  python examples/jacobi_two_characteristics.py
"""

import numpy as np

from repro import BlackForest, Campaign, GTX580, JacobiSolverKernel
from repro.core.prediction import ProblemScalingPredictor
from repro.viz import table

kernel = JacobiSolverKernel()

# ---- collect the (size x iterations) grid of runs ----
campaign = Campaign(kernel, GTX580, rng=0).run()
print(f"campaign: {len(campaign)} runs over "
      f"{len({p[0] for p in campaign.problems()})} sizes x "
      f"{len({p[1] for p in campaign.problems()})} iteration counts")

# ---- fit a two-characteristic problem-scaling predictor ----
predictor = ProblemScalingPredictor(
    BlackForest(n_trees=200, use_pca=False, rng=1),
    characteristic=["size", "iterations"],
    rng=2,
).fit(campaign)

print("\nretained predictors:", predictor.retained_)

# show which counter models needed interaction terms
rows = []
for name, model in sorted(predictor.counter_models_.models.items()):
    interactions = (
        sum(1 for b in model.model.basis_ if b.degree >= 2)
        if model.kind == "mars" else 0
    )
    rows.append((name, model.kind, f"{model.r_squared:.3f}", interactions))
print()
print(table(["counter", "model", "R^2", "interaction terms"], rows,
            title="Counter models over (size, iterations)"))

# ---- predict unseen (size, iterations) pairs ----
unseen = [(320, 3), (640, 12), (896, 24), (1280, 6), (448, 48)]
eval_campaign = Campaign(kernel, GTX580, rng=77).run(problems=unseen)
report = predictor.report(eval_campaign)

rows = [
    (f"({int(n)}, {int(i)})", f"{p * 1e3:.3f} ms", f"{m * 1e3:.3f} ms",
     f"{100 * (p - m) / m:+.1f}%")
    for (n, i), (_, p, m) in zip(unseen, report.rows())
]
print()
print(table(["(size, iterations)", "predicted", "measured", "error"], rows,
            title="Unseen problem pairs"))
print(f"\nexplained variance: {100 * report.explained_variance:.1f}%")

# a sanity surface: predictions grow in both directions
sizes = np.array([256.0, 512.0, 1024.0])
for iters in (4.0, 16.0):
    pts = np.column_stack([sizes, np.full(3, iters)])
    times = predictor.predict(pts)
    print(f"iterations={int(iters):2d}: "
          + "  ".join(f"n={int(s)}: {t * 1e3:.2f}ms"
                      for s, t in zip(sizes, times)))
