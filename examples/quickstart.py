#!/usr/bin/env python3
"""Quickstart: analyze a GPU kernel's bottleneck in five lines.

Profiles the CUDA SDK ``reduce1`` kernel (interleaved addressing with
strided shared-memory indexing) over a range of array lengths on a
simulated GTX580, fits the BlackForest pipeline, and prints the full
bottleneck report: model validation, variable importance, partial
dependence, PCA loadings and the detected bottleneck with its remedy.

Run:  python examples/quickstart.py
"""

from repro import BlackForest, Campaign, GTX580, ReductionKernel, bottleneck_report

# 1. Collect data: profile the kernel over its default problem sweep
#    (the paper's Section 4.2 data-collection stage). Each run yields a
#    vector of nvprof-style hardware counters plus the execution time.
campaign = Campaign(ReductionKernel(1), GTX580, rng=0).run()
print(f"collected {len(campaign)} profiled runs of {campaign.kernel} "
      f"on {campaign.arch}")

# 2. Fit the five-stage pipeline: 80:20 split, random forest with
#    permutation importance, PCA refinement, bottleneck interpretation.
fit = BlackForest(rng=1).fit(campaign, include_characteristics=False)

# 3. Read the report.
print()
print(bottleneck_report(fit))

# 4. The primary finding for reduce1 should be its known pathology:
assert fit.primary_bottleneck is not None
print()
print(f"primary bottleneck: {fit.primary_bottleneck.pattern.key}")
print(f"suggested fix     : {fit.primary_bottleneck.pattern.remedy}")
