#!/usr/bin/env python3
"""Hardware scaling: train on Fermi, predict on Kepler (the hard case).

Section 6.2's Needleman-Wunsch study. The two architectures expose
*different* counters (Fermi: ``l1_shared_bank_conflict``,
``l1_global_load_miss``; Kepler: ``shared_load_replay`` /
``shared_store_replay``) and rank the shared ones differently, so the
straightforward transfer degrades. The paper's workaround — training on
a mixture of important variables from both architectures — is applied
and assessed, including the "accuracy improves with sequence length"
observation of Fig. 8c.

Run:  python examples/nw_hardware_scaling.py
"""

import numpy as np

from repro import (
    Campaign,
    GTX580,
    K20M,
    HardwareScalingPredictor,
    NeedlemanWunschKernel,
    common_predictors,
    importance_similarity,
    mixed_variable_set,
    per_arch_importance,
    prediction_report_text,
)
from repro.viz import importance_chart

kernel = NeedlemanWunschKernel()
sizes = list(range(64, 4097, 64))

print("profiling NW on GTX580 (Fermi) and K20m (Kepler)...")
fermi = Campaign(kernel, GTX580, rng=0).run(problems=sizes)
kepler = Campaign(kernel, K20M, rng=1).run(problems=sizes)

# ---- per-architecture importance (Fig. 8a / 8b analogues) ----
rank_fermi = per_arch_importance(fermi, rng=5)
rank_kepler = per_arch_importance(kepler, rng=5)

print()
print(importance_chart(rank_fermi, k=8, title="GTX580 importance (Fig. 8a)"))
print()
print(importance_chart(rank_kepler, k=8, title="K20m importance (Fig. 8b)"))

caching = {"l1_global_load_miss", "l1_shared_bank_conflict"}
print()
print("Fermi-only caching counters in the GTX580 top-8:",
      sorted(caching & set(rank_fermi.top(8))))
print("...and on the K20m they do not even exist:",
      sorted(caching & set(rank_kepler.names)), "(empty)")

similarity = importance_similarity(rank_fermi, rank_kepler)
print(f"importance-ranking similarity (the paper's 'similarity test'): "
      f"{similarity:.2f}  -> architectures NOT sufficiently similar")

# ---- the mixed-variable workaround (Fig. 8c) ----
common = common_predictors(fermi, kepler)
mixed = mixed_variable_set(rank_fermi, rank_kepler, k=3, common=common)
print()
print("mixed variable set:", mixed)

hw = HardwareScalingPredictor(rng=3).fit(fermi, variables=mixed, common=common)
result = hw.assess(kepler)

print()
print(prediction_report_text(
    result.report,
    title=f"K20m predictions from the {result.train_arch}-trained forest",
))

# ---- Fig. 8c: accuracy improves with sequence length ----
rows = sorted(result.report.rows())
split = 3700  # the paper's observed crossover region
small = [abs(p - m) / m for s, p, m in rows if s <= split]
large = [abs(p - m) / m for s, p, m in rows if s > split]
print()
print(f"mean relative error, lengths <= {split}: {np.mean(small):6.1%}")
print(f"mean relative error, lengths >  {split}: {np.mean(large):6.1%}")
if np.mean(large) < np.mean(small):
    print("=> as in the paper, prediction accuracy improves as the "
          "sequence length increases")
